package pattern

import (
	"fmt"
	"sort"
	"sync/atomic"

	"nbrallgather/internal/bitset"
	"nbrallgather/internal/mpirt"
	"nbrallgather/internal/order"
	"nbrallgather/internal/tags"
	"nbrallgather/internal/vgraph"
)

// The distributed builder runs the paper's Algorithms 1–3 as a real
// message protocol over the mpirt runtime. Its outcome is the
// proposer-optimal stable matching under the globally consistent order
// (weight desc, proposer asc, acceptor asc) — the same matching the
// central builder computes — but it pays the real negotiation cost:
// one REQ or EXIT from every proposer to every positive-weight
// candidate and one ACCEPT or DROP back, plus the per-step agent
// notifications of Algorithm 1 line 30 and the descriptor D transfer.
// This is the cost Fig. 8 measures.

// Signal kinds of Algorithms 2 and 3.
const (
	sigREQ = iota
	sigACCEPT
	sigDROP
	sigEXIT
)

// signalBytes is the modelled wire size of one negotiation signal.
const signalBytes = 8

// noteBytes is the modelled wire size of one agent notification.
const noteBytes = 8

// The build protocol's tag layout lives in the internal/tags registry
// (tags.PropBase …): each halving step uses its own tag group so
// asynchronously progressing ranks never mismatch messages.

// descMsg is the meta payload of the descriptor transfer: the origin's
// buffer source order plus the delivery entries it offloads.
type descMsg struct {
	sources []int
	entries map[int][]int
}

// descMsgBytes models the wire size of a descriptor transfer.
func descMsgBytes(d *descMsg) int {
	n := len(d.sources) + 2
	for _, v := range d.entries {
		n += len(v) + 1
	}
	return 8 * n
}

// finalNote announces count remainder-phase edges from its sender.
type finalNote struct{ count int }

// BuildDistributed constructs the pattern by running the negotiation
// protocol on the given runtime configuration and returns the pattern
// together with the runtime report (virtual build time and message
// counts — the Fig. 8 overhead measurement). The stop threshold L is
// taken from the cluster.
func BuildDistributed(cfg mpirt.Config, g *vgraph.Graph) (*Pattern, *mpirt.Report, error) {
	if cfg.Ranks == 0 {
		cfg.Ranks = g.N()
	}
	if cfg.Ranks != g.N() {
		return nil, nil, fmt.Errorf("pattern: graph has %d ranks but config runs %d", g.N(), cfg.Ranks)
	}
	l := cfg.Cluster.L()
	plans := make([]RankPlan, g.N())
	var attempts, successes, maxBuf atomic.Int64
	rep, err := mpirt.Run(cfg, func(p *mpirt.Proc) {
		plan, a, s := BuildRank(p, g, l)
		plans[p.Rank()] = *plan
		attempts.Add(int64(a))
		successes.Add(int64(s))
		for {
			cur := maxBuf.Load()
			if int64(len(plan.BufSources)) <= cur ||
				maxBuf.CompareAndSwap(cur, int64(len(plan.BufSources))) {
				break
			}
		}
	})
	if err != nil {
		return nil, nil, err
	}
	pat := &Pattern{Graph: g, L: l, Plans: plans}
	pat.Stats.AgentAttempts = int(attempts.Load())
	pat.Stats.AgentSuccesses = int(successes.Load())
	pat.Stats.MaxBufSources = int(maxBuf.Load())
	return pat, rep, nil
}

// BuildRank plays one rank's side of the build protocol. It must be
// called from within an mpirt rank body by every rank of the runtime.
// It returns the rank's plan and its agent attempt/success counts.
func BuildRank(p *mpirt.Proc, g *vgraph.Graph, l int) (plan *RankPlan, attempts, successes int) {
	if l < 1 {
		panic("pattern: stop threshold must be positive")
	}
	r := p.Rank()
	n := g.N()

	// calculate_A: every rank learns every other rank's outgoing
	// neighbor list. We model the exchange as a Bruck-style allgather
	// (⌈log2 n⌉ rounds with accumulating payloads); the lists
	// themselves are globally visible in-process, so only the cost is
	// exchanged.
	ChargeNeighborListExchange(p, g)

	st := &rankState{
		rank:   r,
		lo:     0,
		hi:     n,
		buf:    []int{r},
		hasSrc: bitset.New(n),
		del:    deliv{},
	}
	st.hasSrc.Add(r)
	if g.OutDegree(r) > 0 {
		st.del[r] = g.OutSet(r).Clone()
	}
	selfCopied := bitset.New(n)

	for t := 0; st.hi-st.lo > l; t++ {
		mid := Halves(st.lo, st.hi)
		lower := r < mid
		var s Step
		if lower {
			s = Step{H1Lo: st.lo, H1Hi: mid, H2Lo: mid, H2Hi: st.hi}
		} else {
			s = Step{H1Lo: mid, H1Hi: st.hi, H2Lo: st.lo, H2Hi: mid}
		}
		s.Agent, s.Origin = NoRank, NoRank

		// Two negotiation phases: the lower half proposes first
		// (Algorithm 1 lines 14–24).
		for phase := 0; phase < 2; phase++ {
			proposing := (phase == 0) == lower
			if proposing {
				wants := wantsAgentLocal(st, s.H2Lo, s.H2Hi)
				if wants {
					attempts++
				}
				agent := findAgent(p, g, t, phase, r, s.H2Lo, s.H2Hi)
				if agent != NoRank {
					successes++
					s.Agent = agent
				}
			} else {
				s.Origin = findOrigin(p, g, t, phase, r, s.H1Lo, s.H1Hi, s.H2Lo, s.H2Hi)
			}
		}

		// Algorithm 1 line 30: notify outgoing neighbors in h2 of the
		// selected agent; symmetrically absorb notifications from
		// incoming neighbors in h2. Content is advisory; the cost is
		// what matters here.
		for _, v := range g.OutSet(r).ElemsRange(nil, s.H2Lo, s.H2Hi) {
			p.Send(v, tags.NoteBase+t, noteBytes, nil, nil)
		}
		for range inRange(g, r, s.H2Lo, s.H2Hi) {
			p.Recv(mpirt.AnySource, tags.NoteBase+t)
		}

		// Descriptor exchange (Algorithm 1 lines 31–49).
		if s.Agent != NoRank {
			d := &descMsg{sources: append([]int(nil), st.buf...), entries: map[int][]int{}}
			s.SendCount = len(st.buf)
			for src, dests := range st.del {
				moved := dests.ElemsRange(nil, s.H2Lo, s.H2Hi)
				if len(moved) == 0 {
					continue
				}
				d.entries[src] = moved
				dests.RemoveRange(s.H2Lo, s.H2Hi)
				if dests.Count() == 0 {
					delete(st.del, src)
				}
			}
			p.Send(s.Agent, tags.DescBase+t, descMsgBytes(d), nil, d)
		}
		if s.Origin != NoRank {
			msg := p.Recv(s.Origin, tags.DescBase+t)
			d := msg.Meta.(*descMsg)
			s.RecvSources = append([]int(nil), d.sources...)
			for _, src := range d.sources {
				if !st.hasSrc.Has(src) {
					st.hasSrc.Add(src)
					st.buf = append(st.buf, src)
				}
			}
			for _, src := range order.SortedKeys(d.entries) {
				set := st.del[src]
				for _, dst := range d.entries[src] {
					if dst == r {
						s.SelfCopies = append(s.SelfCopies, src)
						selfCopied.Add(src)
						continue
					}
					if set == nil {
						set = bitset.New(n)
						st.del[src] = set
					}
					set.Add(dst)
				}
				if set != nil && set.Count() == 0 {
					delete(st.del, src)
				}
			}
			sort.Ints(s.SelfCopies)
		}

		if lower {
			st.hi = mid
		} else {
			st.lo = mid
		}
		st.steps = append(st.steps, s)
	}

	// Final phase derivation, with sender announcements so each rank
	// learns its remainder-phase senders (the paper's I_on tracking).
	plan = &RankPlan{Rank: r, Steps: st.steps, BufSources: st.buf}
	bySrcDst := map[int][]int{}
	for _, src := range order.SortedKeys(st.del) {
		for _, dst := range st.del[src].Elems(nil) {
			if dst == r {
				plan.FinalSelfCopies = append(plan.FinalSelfCopies, src)
				selfCopied.Add(src)
				continue
			}
			bySrcDst[dst] = append(bySrcDst[dst], src)
		}
	}
	for _, d := range order.SortedKeys(bySrcDst) {
		srcs := bySrcDst[d]
		sort.Ints(srcs)
		plan.FinalSends = append(plan.FinalSends, FinalSend{Dst: d, Sources: srcs})
		p.Send(d, tags.FinalNote, noteBytes, nil, finalNote{count: len(srcs)})
	}
	sort.Ints(plan.FinalSelfCopies)

	expect := g.InDegree(r) - selfCopied.Count()
	senders := map[int]bool{}
	for expect > 0 {
		msg := p.Recv(mpirt.AnySource, tags.FinalNote)
		expect -= msg.Meta.(finalNote).count
		senders[msg.Src] = true
	}
	if expect < 0 {
		panic(fmt.Sprintf("pattern: rank %d over-announced final edges by %d", r, -expect))
	}
	plan.FinalRecvs = order.SortedKeys(senders)
	return plan, attempts, successes
}

// wantsAgentLocal mirrors builder.wantsAgent for the protocol's local
// state.
func wantsAgentLocal(st *rankState, lo, hi int) bool {
	for _, dests := range st.del {
		if dests.AnyInRange(lo, hi) {
			return true
		}
	}
	return false
}

// inRange returns the incoming neighbors of r inside [lo, hi).
func inRange(g *vgraph.Graph, r, lo, hi int) []int {
	var out []int
	for _, u := range g.In(r) {
		if u >= lo && u < hi {
			out = append(out, u)
		}
	}
	return out
}

// candidatesOf returns, in preference order (weight desc, rank asc),
// the ranks in [clo, chi) sharing at least one outgoing neighbor with r
// inside the weight range [wlo, whi) — the active rows of matrix A. For
// an agent search both ranges are the opposite half; for an origin
// search candidates live in the opposite half while shared neighbors
// are counted in this rank's own half.
func candidatesOf(g *vgraph.Graph, r, clo, chi, wlo, whi int) []int {
	type cand struct{ w, rank int }
	var cs []cand
	ro := g.OutSet(r)
	for c := clo; c < chi; c++ {
		if c == r {
			continue
		}
		if w := ro.AndCountRange(g.OutSet(c), wlo, whi); w > 0 {
			cs = append(cs, cand{w, c})
		}
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].w != cs[j].w {
			return cs[i].w > cs[j].w
		}
		return cs[i].rank < cs[j].rank
	})
	ranks := make([]int, len(cs))
	for i, c := range cs {
		ranks[i] = c.rank
	}
	return ranks
}

// findAgent is Algorithm 2: propose to candidates in preference order,
// move on when dropped, and notify untried candidates once matched.
// h2 = [h2lo, h2hi) is the opposite half agents live in.
func findAgent(p *mpirt.Proc, g *vgraph.Graph, step, phase, r, h2lo, h2hi int) int {
	cands := candidatesOf(g, r, h2lo, h2hi, h2lo, h2hi)
	propTag := tags.PropBase + step*4 + phase*2
	replyTag := tags.ReplyBase + step*4 + phase*2
	for i, c := range cands {
		p.Send(c, propTag, signalBytes, nil, sigREQ)
		reply := p.Recv(c, replyTag)
		if reply.Meta.(int) == sigACCEPT {
			for _, rest := range cands[i+1:] {
				p.Send(rest, propTag, signalBytes, nil, sigEXIT)
			}
			return c
		}
	}
	return NoRank
}

// findOrigin is Algorithm 3: wait until every positive-weight candidate
// origin has spoken (REQ or EXIT), deferring requests until the best
// remaining candidate's message arrives, then accept it and drop the
// rest. h1 = [h1lo, h1hi) is this rank's own half (where shared
// outgoing neighbors are counted); h2 = [h2lo, h2hi) is the half
// origins live in.
func findOrigin(p *mpirt.Proc, g *vgraph.Graph, step, phase, r, h1lo, h1hi, h2lo, h2hi int) int {
	// Candidate origins live in h2 and are ranked by shared outgoing
	// neighbors inside this rank's own half — symmetric to the
	// proposers' weight, so both sides follow one global preference
	// order.
	cands := candidatesOf(g, r, h2lo, h2hi, h1lo, h1hi)

	propTag := tags.PropBase + step*4 + phase*2
	replyTag := tags.ReplyBase + step*4 + phase*2

	remaining := map[int]bool{}
	for _, c := range cands {
		remaining[c] = true
	}
	waiting := map[int]bool{}
	selected := NoRank
	pending := len(cands)

	decide := func() {
		if selected != NoRank {
			return
		}
		// The best remaining candidate is the earliest in preference
		// order still present.
		for _, c := range cands {
			if !remaining[c] {
				continue
			}
			if waiting[c] {
				selected = c
				p.Send(c, replyTag, signalBytes, nil, sigACCEPT)
				delete(waiting, c)
				// DROPs go out in sorted order: these are real sends, so
				// map-order iteration would perturb the runtime's event
				// order across otherwise identical runs and break
				// bit-exact chaos replay.
				for _, w := range order.SortedKeys(waiting) {
					p.Send(w, replyTag, signalBytes, nil, sigDROP)
					delete(waiting, w)
					delete(remaining, w)
				}
			}
			return // best remaining has not spoken yet: defer
		}
	}

	for pending > 0 {
		msg := p.Recv(mpirt.AnySource, propTag)
		pending--
		o := msg.Src
		switch msg.Meta.(int) {
		case sigREQ:
			if selected != NoRank {
				p.Send(o, replyTag, signalBytes, nil, sigDROP)
				delete(remaining, o)
				continue
			}
			waiting[o] = true
			decide()
		case sigEXIT:
			delete(remaining, o)
			decide()
		default:
			panic(fmt.Sprintf("pattern: rank %d got unexpected signal %v from %d", r, msg.Meta, o))
		}
	}
	return selected
}

// ChargeNeighborListExchange models the calculate_A cost shared by the
// Distance Halving and Common Neighbor pattern builders: a Bruck
// allgather of per-rank outgoing-neighbor lists in ⌈log2 n⌉ rounds with
// accumulating payload sizes. Payload content is not shipped — the
// graph is globally visible in-process — only the cost is real.
func ChargeNeighborListExchange(p *mpirt.Proc, g *vgraph.Graph) {
	n := p.Size()
	r := p.Rank()
	// acc[i] tracks whether rank i's list has been accumulated; we
	// only need the byte count, maintained incrementally.
	have := bitset.New(n)
	have.Add(r)
	bytesOf := func(rank int) int { return 8 * (g.OutDegree(rank) + 1) }
	accBytes := bytesOf(r)
	for dist := 1; dist < n; dist *= 2 {
		dst := (r - dist%n + n) % n
		src := (r + dist) % n
		p.Send(dst, tags.Exchange+dist, accBytes, nil, nil)
		p.Recv(src, tags.Exchange+dist)
		// In Bruck's algorithm the received block is the source's
		// accumulated prefix: ranks src, src+1, … up to dist entries.
		for k := 0; k < dist && k < n-1; k++ {
			o := (src + k) % n
			if !have.Has(o) {
				have.Add(o)
				accBytes += bytesOf(o)
			}
		}
	}
}
