package nbrallgather_test

import (
	"fmt"

	nbr "nbrallgather"
)

// ExampleNewDistanceHalving demonstrates the core flow: build a virtual
// topology, construct the Distance Halving collective, and compare its
// message count against the naive algorithm's.
func ExampleNewDistanceHalving() {
	cluster := nbr.Niagara(4, 6) // 48 ranks
	graph, _ := nbr.ErdosRenyi(cluster.Ranks(), 0.5, 7)
	dh, _ := nbr.NewDistanceHalving(graph, cluster.L())

	cfg := nbr.MeasureConfig{Cluster: cluster, MsgSize: 512, Trials: 1, Phantom: true}
	naive, _ := nbr.Measure(cfg, nbr.NewNaive(graph))
	fast, _ := nbr.Measure(cfg, dh)
	fmt.Printf("naive sends %d messages, distance halving %d\n",
		naive.MsgsPerTrial, fast.MsgsPerTrial)
	fmt.Printf("distance halving is faster: %v\n", fast.Mean < naive.Mean)
	// Output:
	// naive sends 1128 messages, distance halving 395
	// distance halving is faster: true
}

// ExampleBuildPattern shows the pattern a rank follows: halving steps
// with negotiated agents, then remainder deliveries.
func ExampleBuildPattern() {
	graph, _ := nbr.ErdosRenyi(32, 0.4, 3)
	pat, _ := nbr.BuildPattern(graph, 4) // stop at 4 ranks per socket
	plan := pat.Plans[0]
	fmt.Printf("rank 0 halves the communicator %d times\n", len(plan.Steps))
	fmt.Printf("pattern is valid: %v\n", pat.Validate() == nil)
	fmt.Printf("agent negotiation success: %.0f%%\n", 100*pat.Stats.SuccessRate())
	// Output:
	// rank 0 halves the communicator 3 times
	// pattern is valid: true
	// agent negotiation success: 80%
}

// ExampleMoore builds the structured stencil workload of the paper's
// Fig. 6.
func ExampleMoore() {
	dims, _ := nbr.MooreDims(64, 2)
	graph, _ := nbr.Moore(dims, 2)
	fmt.Printf("grid %v, every rank has %d neighbors\n", dims, graph.OutDegree(0))
	// Output:
	// grid [8 8], every rank has 24 neighbors
}

// ExampleNiagaraModel evaluates the paper's Section V analytical model.
func ExampleNiagaraModel() {
	model := nbr.NiagaraModel(2160, 18)
	fmt.Printf("predicted speedup, dense graph, 32B messages: %.0fx\n",
		model.Speedup(0.7, 32))
	fmt.Printf("naive sends %.0f messages per rank, DH %.0f\n",
		0.7*2160, model.NOff(0.7)+model.NIn(0.7))
	// Output:
	// predicted speedup, dense graph, 32B messages: 52x
	// naive sends 1512 messages per rank, DH 26
}

// ExampleRun uses the runtime directly for custom communication.
func ExampleRun() {
	cluster := nbr.Niagara(1, 2) // one node, 4 ranks
	report, _ := nbr.Run(nbr.RunConfig{Cluster: cluster}, func(p *nbr.Proc) {
		next := (p.Rank() + 1) % p.Size()
		prev := (p.Rank() - 1 + p.Size()) % p.Size()
		p.Send(next, 0, 8, []byte("ring msg"), nil)
		p.Recv(prev, 0)
	})
	fmt.Printf("ring exchanged %d messages\n", report.Msgs())
	// Output:
	// ring exchanged 4 messages
}
