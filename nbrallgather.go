// Package nbrallgather is a pure-Go reproduction of "A Topology- and
// Load-Aware Design for Neighborhood Allgather" (Sharifian, Sojoodi,
// Afsahi — IEEE CLUSTER 2024): the Distance Halving neighborhood
// allgather algorithm, the naive and Common Neighbor baselines, the
// Section V performance model, and the simulated cluster substrate
// (MPI-like runtime + Hockney-style topology-aware cost model) the
// experiments run on.
//
// # Quick start
//
//	cluster := nbrallgather.Niagara(4, 6)                   // 48 ranks
//	graph, _ := nbrallgather.ErdosRenyi(cluster.Ranks(), 0.3, 1)
//	dh, _ := nbrallgather.NewDistanceHalving(graph, cluster.L())
//	res, _ := nbrallgather.Measure(nbrallgather.MeasureConfig{
//		Cluster: cluster, MsgSize: 1024, Phantom: true,
//	}, dh)
//	fmt.Println(res.Mean)
//
// The façade re-exports the library's building blocks; the
// sub-packages under internal/ hold the implementations:
//
//   - internal/topology, internal/netmodel — cluster shape and cost model
//   - internal/mpirt — the goroutine-per-rank MPI-like runtime
//   - internal/vgraph — virtual topologies and workload generators
//   - internal/pattern — Distance Halving pattern builders (Algorithms 1–3)
//   - internal/collective — the three allgather algorithms (Algorithm 4)
//   - internal/perfmodel — the Section V analytical model
//   - internal/sparse, internal/spmm — the SpMM kernel workload
//   - internal/harness — experiment drivers for every figure
package nbrallgather

import (
	"nbrallgather/internal/collective"
	"nbrallgather/internal/harness"
	"nbrallgather/internal/mpirt"
	"nbrallgather/internal/netmodel"
	"nbrallgather/internal/pattern"
	"nbrallgather/internal/perfmodel"
	"nbrallgather/internal/sparse"
	"nbrallgather/internal/spmm"
	"nbrallgather/internal/topology"
	"nbrallgather/internal/vgraph"
)

// Cluster describes the simulated machine: groups → nodes → sockets →
// ranks. See Niagara and Flat for presets.
type Cluster = topology.Cluster

// Distance classifies how far apart two ranks are placed.
type Distance = topology.Distance

// NetParams are the communication cost-model constants.
type NetParams = netmodel.Params

// Graph is a directed virtual topology (u→v means v is an outgoing
// neighbor of u).
type Graph = vgraph.Graph

// Op is a neighborhood allgather implementation bound to a graph.
type Op = collective.Op

// VOp is a neighborhood allgatherv implementation (per-rank message
// sizes); all algorithms in this library implement it.
type VOp = collective.VOp

// AOp is a neighborhood alltoall implementation (distinct payload per
// outgoing neighbor) — the paper's named future-work extension.
type AOp = collective.AOp

// Pattern is a Distance Halving communication pattern.
type Pattern = pattern.Pattern

// PatternStats aggregates pattern-quality measures (agent success
// rate, buffer growth).
type PatternStats = pattern.Stats

// Proc is the per-rank handle inside a runtime execution.
type Proc = mpirt.Proc

// RunConfig configures a raw runtime execution.
type RunConfig = mpirt.Config

// RunReport summarises a runtime execution (virtual time, message and
// byte counts by distance class).
type RunReport = mpirt.Report

// MeasureConfig configures a latency measurement.
type MeasureConfig = harness.Config

// MeasureResult is an aggregated latency measurement.
type MeasureResult = harness.Result

// Comparison holds one workload measured under all three algorithms.
type Comparison = harness.Comparison

// ModelParams parameterise the Section V analytical performance model.
type ModelParams = perfmodel.Params

// CSR is a compressed-sparse-row matrix.
type CSR = sparse.CSR

// SpMMKernel is the distributed Z = X·Y kernel of Section VII-C.
type SpMMKernel = spmm.Kernel

// Niagara returns a cluster shaped like the paper's testbed: two-socket
// nodes with ranksPerSocket ranks bound to each socket and Dragonfly+
// groups of 12 nodes.
func Niagara(nodes, ranksPerSocket int) Cluster {
	return topology.Niagara(nodes, ranksPerSocket)
}

// Flat returns a single-group cluster with uniform inter-node distance
// (the flat-network ablation target).
func Flat(nodes, socketsPerNode, ranksPerSocket int) Cluster {
	return topology.Flat(nodes, socketsPerNode, ranksPerSocket)
}

// NiagaraNetParams returns cost-model constants calibrated to resemble
// the paper's EDR InfiniBand / Dragonfly+ testbed.
func NiagaraNetParams() NetParams { return netmodel.NiagaraParams() }

// UniformNetParams returns a topology-blind parameter set for the
// flat-network ablation.
func UniformNetParams() NetParams { return netmodel.UniformParams() }

// ErdosRenyi generates a directed G(n, δ) random sparse graph; each
// ordered pair is an edge independently with probability delta.
func ErdosRenyi(n int, delta float64, seed int64) (*Graph, error) {
	return vgraph.ErdosRenyi(n, delta, seed)
}

// Moore generates a Moore neighborhood of radius r on a periodic grid
// with the given extents: every rank is adjacent to all ranks within
// Chebyshev distance r, i.e. (2r+1)^d − 1 neighbors.
func Moore(dims []int, r int) (*Graph, error) { return vgraph.Moore(dims, r) }

// MooreDims factors n ranks into d near-equal grid extents.
func MooreDims(n, d int) ([]int, error) { return vgraph.MooreDims(n, d) }

// Cartesian generates the von Neumann neighborhood of an MPI_Cart
// communicator: ±1 along every grid dimension, optionally periodic.
func Cartesian(dims []int, periodic bool) (*Graph, error) {
	return vgraph.Cartesian(dims, periodic)
}

// GraphFromOutLists builds a virtual topology from per-rank outgoing
// neighbor lists (the MPI_Dist_graph_create_adjacent equivalent).
func GraphFromOutLists(n int, out [][]int) (*Graph, error) {
	return vgraph.FromOutLists(n, out)
}

// NewNaive returns the direct point-to-point algorithm (the default
// behaviour of Open MPI and other mainstream MPI implementations).
func NewNaive(g *Graph) VOp { return collective.NewNaive(g) }

// NewDistanceHalving builds the paper's communication pattern centrally
// (stop threshold l = ranks per socket) and returns the Distance
// Halving collective.
func NewDistanceHalving(g *Graph, l int) (VOp, error) {
	return collective.NewDistanceHalving(g, l)
}

// NewCommonNeighbor returns the message-combining baseline of
// Ghazimirsaeed et al. with consecutive groups of size k.
func NewCommonNeighbor(g *Graph, k int) (VOp, error) {
	return collective.NewCommonNeighbor(g, k)
}

// NewCommonNeighborAffinity returns the Common Neighbor baseline with
// affinity-formed groups (hierarchical shared-neighbor matching,
// faithful to the original collaborative mechanism). k must be a power
// of two.
func NewCommonNeighborAffinity(g *Graph, k int) (VOp, error) {
	return collective.NewCommonNeighborAffinity(g, k)
}

// NewLeaderBased returns the hierarchical baseline in the style of the
// related work's large-message designs: per-node leaders gather,
// exchange one combined message per communicating node pair, and
// distribute; intra-node edges go direct.
func NewLeaderBased(g *Graph, c Cluster) (VOp, error) {
	return collective.NewLeaderBased(g, c)
}

// NewLeaderBasedK is NewLeaderBased with up to k load-balanced leaders
// per node (the published design's multi-leader mechanism).
func NewLeaderBasedK(g *Graph, c Cluster, k int) (VOp, error) {
	return collective.NewLeaderBasedK(g, c, k)
}

// NewNaiveAlltoall returns the direct point-to-point neighborhood
// alltoall.
func NewNaiveAlltoall(g *Graph) AOp { return collective.NewNaiveAlltoall(g) }

// NewDistanceHalvingAlltoall routes neighborhood alltoall segments
// through the Distance Halving pattern's agents — the paper's future
// work, prototyped: many small distant sends combine into one message
// per halving step with no payload replication.
func NewDistanceHalvingAlltoall(g *Graph, l int) (AOp, error) {
	return collective.NewDistanceHalvingAlltoall(g, l)
}

// CountFunc gives the alltoallv segment size for an edge src → dst.
type CountFunc = collective.CountFunc

// AVOp is a neighborhood alltoallv implementation (per-edge sizes).
type AVOp = collective.AVOp

// Persistent is an MPI-4-style persistent collective handle
// (Init/Start/Wait).
type Persistent = collective.Persistent

// AllgatherInit binds a persistent neighborhood allgather for the
// calling rank; Start/Wait rounds reuse the bound buffers.
func AllgatherInit(op VOp, p *Proc, sbuf []byte, m int, rbuf []byte) (*Persistent, error) {
	return collective.AllgatherInit(op, p, sbuf, m, rbuf)
}

// BuildPattern constructs a Distance Halving pattern with the
// deterministic central builder.
func BuildPattern(g *Graph, l int) (*Pattern, error) { return pattern.Build(g, l) }

// AgentPolicy selects how the pattern builder chooses agents.
type AgentPolicy = pattern.Policy

// Agent selection policies: the paper's load-aware maximisation of
// shared outgoing neighbors, and a first-fit ablation baseline.
const (
	PolicyLoadAware = pattern.PolicyLoadAware
	PolicyFirstFit  = pattern.PolicyFirstFit
)

// BuildPatternWithPolicy constructs a pattern under an explicit agent
// selection policy (the load-aware vs first-fit ablation).
func BuildPatternWithPolicy(g *Graph, l int, p AgentPolicy) (*Pattern, error) {
	return pattern.BuildWithPolicy(g, l, p)
}

// NewDistanceHalvingFromPattern binds the Distance Halving collective
// to a prebuilt pattern.
func NewDistanceHalvingFromPattern(p *Pattern) VOp {
	return collective.NewDistanceHalvingFromPattern(p)
}

// BuildPatternDistributed constructs the pattern by running the
// paper's REQ/ACCEPT/DROP/EXIT negotiation protocol (Algorithms 1–3)
// over the runtime, returning the pattern and the build-cost report
// (the Fig. 8 measurement).
func BuildPatternDistributed(cfg RunConfig, g *Graph) (*Pattern, *RunReport, error) {
	return pattern.BuildDistributed(cfg, g)
}

// Run executes body on one goroutine per rank against the simulated
// cluster and returns aggregate statistics.
func Run(cfg RunConfig, body func(*Proc)) (*RunReport, error) {
	return mpirt.Run(cfg, body)
}

// Measure runs op under cfg and aggregates per-trial virtual-time
// latencies.
func Measure(cfg MeasureConfig, op Op) (MeasureResult, error) {
	return harness.Measure(cfg, op)
}

// Compare measures one graph under the naive, Distance Halving and
// best-K Common Neighbor algorithms.
func Compare(cfg MeasureConfig, g *Graph, label string) (Comparison, error) {
	return harness.Compare(cfg, g, label)
}

// NiagaraModel instantiates the Section V analytical model for a
// communicator of n ranks with L ranks per socket.
func NiagaraModel(n, l int) ModelParams { return perfmodel.NiagaraModel(n, l) }

// NewSpMMKernel binds a square sparse matrix and dense width k to
// nranks block rows, deriving the neighborhood graph from the block
// sparsity.
func NewSpMMKernel(x *CSR, k, nranks int) (*SpMMKernel, error) {
	return spmm.New(x, k, nranks)
}

// TableIIEntry pairs a Table II stand-in matrix with its provenance.
type TableIIEntry = sparse.NamedMatrix

// TableIIMatrices generates the synthetic stand-ins for the paper's
// seven SuiteSparse matrices (same order, nonzero budget and structure
// family).
func TableIIMatrices(seed int64) []TableIIEntry { return sparse.TableII(seed) }
