package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, m := range []string{"dwt_193", "Heart1", "comsol"} {
		if !strings.Contains(out.String(), m) {
			t.Errorf("Table II listing missing %s:\n%s", m, out.String())
		}
	}
}

// TestRunMatrixMarketFile exercises the -mm path end to end: parse a
// real MatrixMarket file and push it through the Fig. 7 SpMM pipeline
// on an 8-rank cluster.
func TestRunMatrixMarketFile(t *testing.T) {
	mtx := filepath.Join(t.TempDir(), "tiny.mtx")
	src := "%%MatrixMarket matrix coordinate real general\n" +
		"8 8 10\n1 1 2\n2 1 1\n2 3 4\n3 4 1\n4 2 3\n5 6 1\n6 5 2\n7 8 1\n8 7 2\n8 8 1\n"
	if err := os.WriteFile(mtx, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-mm", mtx, "-nodes", "2", "-rps", "2", "-trials", "1", "-k", "2"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "8×8, 10 nonzeros") {
		t.Errorf("output missing matrix summary:\n%s", out.String())
	}
}

func TestRunSyntheticSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("Table II sweep skipped in -short")
	}
	var out bytes.Buffer
	err := run([]string{"-nodes", "2", "-rps", "2", "-trials", "1", "-k", "4", "-csv"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "partial results kept") {
		t.Errorf("sweep failed partway:\n%s", out.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
