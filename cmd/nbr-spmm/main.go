// Command nbr-spmm regenerates Table II and Fig. 7: the SpMM kernel
// (Z = X·Y with a neighborhood allgather of Y) over the seven
// SuiteSparse matrices — synthetic stand-ins matched in order, nonzero
// count and structure family (see DESIGN.md). A MatrixMarket file can
// be substituted for the generated set with -mm.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"nbrallgather/internal/harness"
	"nbrallgather/internal/sparse"
	"nbrallgather/internal/topology"
)

func main() {
	list := flag.Bool("list", false, "print the Table II stand-in matrices and exit")
	nodes := flag.Int("nodes", 4, "number of simulated nodes")
	rps := flag.Int("rps", 6, "ranks per socket")
	width := flag.Int("k", 32, "dense operand width (columns of Y)")
	trials := flag.Int("trials", 3, "timed repetitions per cell")
	seed := flag.Int64("seed", 1, "matrix generator seed")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	mm := flag.String("mm", "", "MatrixMarket file to run instead of the Table II set")
	wall := flag.Duration("wall", 10*time.Minute, "wall-clock budget per measurement")
	flag.Parse()

	if *list {
		mats := sparse.TableII(*seed)
		fmt.Println("== Table II — sparse matrices (synthetic stand-ins) ==")
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "matrix\tpaper size\tpaper nnz\tgenerated nnz\tstructure")
		for _, nm := range mats {
			fmt.Fprintf(tw, "%s\t%d × %d\t%d\t%d\t%s\n",
				nm.Name, nm.PaperRows, nm.PaperRows, nm.PaperNNZ, nm.M.NNZ(), nm.Structure)
		}
		tw.Flush()
		return
	}

	c := topology.Niagara(*nodes, *rps)
	fmt.Printf("SpMM cluster: %s, dense width k=%d\n", c, *width)

	if *mm != "" {
		f, err := os.Open(*mm)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nbr-spmm: %v\n", err)
			os.Exit(1)
		}
		m, err := sparse.ReadMatrixMarket(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "nbr-spmm: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("loaded %s: %d×%d, %d nonzeros\n", *mm, m.Rows, m.Cols, m.NNZ())
		// Run the loaded matrix through the Fig. 7 pipeline by
		// substituting the table.
		rows, err := harness.SpMMSweepMatrices(c, []sparse.NamedMatrix{{
			Name: *mm, PaperRows: m.Rows, PaperNNZ: m.NNZ(), Structure: "file", M: m,
		}}, *width, *trials, *wall)
		report(rows, err, *csv)
		return
	}

	rows, err := harness.SpMMSweep(c, *width, *trials, *seed, *wall)
	report(rows, err, *csv)
}

func report(rows []harness.SpMMResult, err error, csv bool) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "nbr-spmm: %v\n", err)
		if len(rows) == 0 {
			os.Exit(1)
		}
	}
	if csv {
		harness.CSVSpMM(os.Stdout, rows)
		return
	}
	harness.PrintSpMM(os.Stdout, rows)
}
