// Command nbr-spmm regenerates Table II and Fig. 7: the SpMM kernel
// (Z = X·Y with a neighborhood allgather of Y) over the seven
// SuiteSparse matrices — synthetic stand-ins matched in order, nonzero
// count and structure family (see DESIGN.md). A MatrixMarket file can
// be substituted for the generated set with -mm.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"nbrallgather/internal/harness"
	"nbrallgather/internal/sparse"
	"nbrallgather/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "nbr-spmm: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nbr-spmm", flag.ContinueOnError)
	fs.SetOutput(out)
	list := fs.Bool("list", false, "print the Table II stand-in matrices and exit")
	nodes := fs.Int("nodes", 4, "number of simulated nodes")
	rps := fs.Int("rps", 6, "ranks per socket")
	width := fs.Int("k", 32, "dense operand width (columns of Y)")
	trials := fs.Int("trials", 3, "timed repetitions per cell")
	seed := fs.Int64("seed", 1, "matrix generator seed")
	csv := fs.Bool("csv", false, "emit CSV instead of tables")
	mm := fs.String("mm", "", "MatrixMarket file to run instead of the Table II set")
	wall := fs.Duration("wall", 10*time.Minute, "wall-clock budget per measurement")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		mats := sparse.TableII(*seed)
		fmt.Fprintln(out, "== Table II — sparse matrices (synthetic stand-ins) ==")
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "matrix\tpaper size\tpaper nnz\tgenerated nnz\tstructure")
		for _, nm := range mats {
			fmt.Fprintf(tw, "%s\t%d × %d\t%d\t%d\t%s\n",
				nm.Name, nm.PaperRows, nm.PaperRows, nm.PaperNNZ, nm.M.NNZ(), nm.Structure)
		}
		tw.Flush()
		return nil
	}

	c := topology.Niagara(*nodes, *rps)
	fmt.Fprintf(out, "SpMM cluster: %s, dense width k=%d\n", c, *width)

	if *mm != "" {
		f, err := os.Open(*mm)
		if err != nil {
			return err
		}
		m, err := sparse.ReadMatrixMarket(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "loaded %s: %d×%d, %d nonzeros\n", *mm, m.Rows, m.Cols, m.NNZ())
		// Run the loaded matrix through the Fig. 7 pipeline by
		// substituting the table.
		rows, err := harness.SpMMSweepMatrices(c, []sparse.NamedMatrix{{
			Name: *mm, PaperRows: m.Rows, PaperNNZ: m.NNZ(), Structure: "file", M: m,
		}}, *width, *trials, *wall)
		return report(out, rows, err, *csv)
	}

	rows, err := harness.SpMMSweep(c, *width, *trials, *seed, *wall)
	return report(out, rows, err, *csv)
}

// report prints the sweep rows. A sweep error with partial rows is
// reported but not fatal, matching the other figure commands.
func report(out io.Writer, rows []harness.SpMMResult, err error, csv bool) error {
	if err != nil {
		if len(rows) == 0 {
			return err
		}
		fmt.Fprintf(out, "nbr-spmm: %v (partial results kept)\n", err)
	}
	if csv {
		harness.CSVSpMM(out, rows)
		return nil
	}
	harness.PrintSpMM(out, rows)
	return nil
}
