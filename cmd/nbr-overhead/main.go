// Command nbr-overhead regenerates Fig. 8: the one-time communication
// pattern creation cost of the Distance Halving algorithm (the full
// REQ/ACCEPT/DROP/EXIT agent negotiation of Algorithms 2 and 3 run as
// real messages) against the Common Neighbor baseline's group
// formation, across Random Sparse Graph densities.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"nbrallgather/internal/harness"
	"nbrallgather/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "nbr-overhead: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nbr-overhead", flag.ContinueOnError)
	fs.SetOutput(out)
	nodes := fs.Int("nodes", 8, "number of simulated nodes")
	rps := fs.Int("rps", 6, "ranks per socket")
	seed := fs.Int64("seed", 1, "graph generator seed")
	full := fs.Bool("full", false, "paper-scale 2160 ranks (slow: the negotiation really exchanges O(n²) messages)")
	csv := fs.Bool("csv", false, "emit CSV instead of tables")
	wall := fs.Duration("wall", 20*time.Minute, "wall-clock budget per build")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *full {
		*nodes, *rps = 60, 18
	}
	c := topology.Niagara(*nodes, *rps)
	fmt.Fprintf(out, "overhead cluster: %s\n", c)

	rows, err := harness.OverheadSweep(c, harness.PaperDensities, *seed, *wall)
	if err != nil {
		if len(rows) == 0 {
			return err
		}
		fmt.Fprintf(out, "nbr-overhead: %v (partial results kept)\n", err)
	}
	if *csv {
		harness.CSVOverhead(out, rows)
		return nil
	}
	harness.PrintOverhead(out, rows)
	return nil
}
