// Command nbr-overhead regenerates Fig. 8: the one-time communication
// pattern creation cost of the Distance Halving algorithm (the full
// REQ/ACCEPT/DROP/EXIT agent negotiation of Algorithms 2 and 3 run as
// real messages) against the Common Neighbor baseline's group
// formation, across Random Sparse Graph densities.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nbrallgather/internal/harness"
	"nbrallgather/internal/topology"
)

func main() {
	nodes := flag.Int("nodes", 8, "number of simulated nodes")
	rps := flag.Int("rps", 6, "ranks per socket")
	seed := flag.Int64("seed", 1, "graph generator seed")
	full := flag.Bool("full", false, "paper-scale 2160 ranks (slow: the negotiation really exchanges O(n²) messages)")
	csv := flag.Bool("csv", false, "emit CSV instead of tables")
	wall := flag.Duration("wall", 20*time.Minute, "wall-clock budget per build")
	flag.Parse()

	if *full {
		*nodes, *rps = 60, 18
	}
	c := topology.Niagara(*nodes, *rps)
	fmt.Printf("overhead cluster: %s\n", c)

	rows, err := harness.OverheadSweep(c, harness.PaperDensities, *seed, *wall)
	if err != nil {
		fmt.Fprintf(os.Stderr, "nbr-overhead: %v\n", err)
		if len(rows) == 0 {
			os.Exit(1)
		}
	}
	if *csv {
		harness.CSVOverhead(os.Stdout, rows)
		return
	}
	harness.PrintOverhead(os.Stdout, rows)
}
