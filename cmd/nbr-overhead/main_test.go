package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke runs the Fig. 8 pattern-creation overhead sweep on an
// 8-rank cluster — the agent negotiation really exchanges messages, so
// this covers the distributed builder end to end.
func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nodes", "2", "-rps", "2"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "overhead cluster:") {
		t.Errorf("output missing cluster line:\n%s", out.String())
	}
	if strings.Contains(out.String(), "partial results kept") {
		t.Errorf("sweep failed partway:\n%s", out.String())
	}
}

func TestRunCSV(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nodes", "2", "-rps", "2", "-csv"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
