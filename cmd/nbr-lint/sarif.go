package main

import (
	"encoding/json"
	"io"
	"path/filepath"

	"nbrallgather/internal/lint"
)

// Minimal SARIF 2.1.0 emission: one run, one rule per analyzer, one
// result per finding. Just enough surface for code-scanning upload —
// the full schema is enormous and everything else is optional.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine int `json:"startLine"`
}

const sarifSchema = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"

// writeSARIF renders the findings as a SARIF 2.1.0 log. File paths are
// emitted slash-separated and cleaned so they resolve relative to the
// linted root.
func writeSARIF(out io.Writer, analyzers []*lint.Analyzer, diags []lint.Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifText{Text: a.Doc}})
	}
	rules = append(rules, sarifRule{
		ID:               lint.StaleDirectiveName,
		ShortDescription: sarifText{Text: "flags //lint: directives that no longer suppress anything"},
	})

	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(filepath.Clean(d.Pos.Filename))},
					Region:           sarifRegion{StartLine: d.Pos.Line},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  sarifSchema,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "nbr-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
