package main

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nbrallgather/internal/lintout"
)

// TestModuleIsClean runs the CLI path over the real module: the tree
// must produce zero findings and a nil error.
func TestModuleIsClean(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dir", filepath.Join("..", "..")}, &out); err != nil {
		t.Fatalf("lint over module failed: %v\n%s", err, out.String())
	}
	if out.Len() != 0 {
		t.Fatalf("expected no output on a clean module, got:\n%s", out.String())
	}
}

// TestFixturesFail runs the CLI over the golden fixture tree: every
// bad package must surface findings and the run must report an error.
func TestFixturesFail(t *testing.T) {
	fixtures := filepath.Join("..", "..", "internal", "lint", "testdata", "src")
	var out strings.Builder
	err := run([]string{"-dir", fixtures, "-modpath", "nbrallgather"}, &out)
	if err == nil {
		t.Fatalf("fixture tree should produce findings, got none:\n%s", out.String())
	}
	var ef errFindings
	if !errors.As(err, &ef) {
		t.Fatalf("expected errFindings, got %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"[determinism]", "[requestleak]", "[errdiscipline]", "[tagdiscipline]", "[vtclean]",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("fixture output missing %s findings:\n%s", want, text)
		}
	}
}

// TestAnalyzerSubset checks -analyzers filtering: only the requested
// analyzer's findings appear.
func TestAnalyzerSubset(t *testing.T) {
	fixtures := filepath.Join("..", "..", "internal", "lint", "testdata", "src")
	var out strings.Builder
	err := run([]string{"-dir", fixtures, "-modpath", "nbrallgather", "-analyzers", "vtclean"}, &out)
	if err == nil {
		t.Fatal("vtclean subset over fixtures should still fail")
	}
	text := out.String()
	if !strings.Contains(text, "[vtclean]") {
		t.Errorf("missing vtclean findings:\n%s", text)
	}
	if strings.Contains(text, "[tagdiscipline]") {
		t.Errorf("subset run leaked other analyzers:\n%s", text)
	}
}

// TestJSONOutput checks the machine-readable mode round-trips.
func TestJSONOutput(t *testing.T) {
	fixtures := filepath.Join("..", "..", "internal", "lint", "testdata", "src")
	var out strings.Builder
	err := run([]string{"-dir", fixtures, "-modpath", "nbrallgather", "-json"}, &out)
	if err == nil {
		t.Fatal("fixture tree should produce findings")
	}
	var findings []lintout.Finding
	if jerr := json.Unmarshal([]byte(out.String()), &findings); jerr != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", jerr, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("JSON output is empty")
	}
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Analyzer == "" || f.Message == "" {
			t.Fatalf("incomplete finding: %+v", f)
		}
	}
}

// TestUnknownAnalyzer checks the flag validation path.
func TestUnknownAnalyzer(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-analyzers", "nope"}, &out); err == nil {
		t.Fatal("unknown analyzer name should fail")
	}
}

// TestSARIFOutput checks the -sarif mode emits a valid SARIF 2.1.0 log
// with one rule per analyzer and a located result per finding.
func TestSARIFOutput(t *testing.T) {
	fixtures := filepath.Join("..", "..", "internal", "lint", "testdata", "src")
	var out strings.Builder
	err := run([]string{"-dir", fixtures, "-modpath", "nbrallgather", "-sarif"}, &out)
	if err == nil {
		t.Fatal("fixture tree should produce findings")
	}
	var log lintout.SARIFLog
	if jerr := json.Unmarshal([]byte(out.String()), &log); jerr != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", jerr, out.String())
	}
	if log.Version != "2.1.0" {
		t.Errorf("version = %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("want exactly 1 run, got %d", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "nbr-lint" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	if len(run.Results) == 0 {
		t.Fatal("SARIF results are empty")
	}
	rules := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		rules[r.ID] = true
	}
	for _, res := range run.Results {
		if !rules[res.RuleID] {
			t.Errorf("result rule %q not declared in driver rules", res.RuleID)
		}
		if len(res.Locations) != 1 {
			t.Fatalf("result without location: %+v", res)
		}
		loc := res.Locations[0].PhysicalLocation
		if loc.ArtifactLocation.URI == "" || loc.Region.StartLine <= 0 {
			t.Errorf("incomplete location: %+v", loc)
		}
		if strings.Contains(loc.ArtifactLocation.URI, "\\") {
			t.Errorf("URI not slash-separated: %q", loc.ArtifactLocation.URI)
		}
	}
	// The dataflow analyzers must be represented among the results.
	seen := map[string]bool{}
	for _, res := range run.Results {
		seen[res.RuleID] = true
	}
	for _, want := range []string{"bufinflight", "deadlockshape", "waitcoverage"} {
		if !seen[want] {
			t.Errorf("no SARIF result from %s over the fixtures", want)
		}
	}
}

// TestExitCodes pins the exit-code contract: findings exit 1, tool
// failures (unloadable dir, bad flags) exit 2, clean runs exit 0.
func TestExitCodes(t *testing.T) {
	fixtures := filepath.Join("..", "..", "internal", "lint", "testdata", "src")
	var out, errOut strings.Builder
	if code := Main([]string{"-dir", fixtures, "-modpath", "nbrallgather"}, &out, &errOut); code != 1 {
		t.Errorf("findings must exit 1, got %d (stderr: %s)", code, errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := Main([]string{"-dir", filepath.Join("..", "..", "no-such-dir")}, &out, &errOut); code != 2 {
		t.Errorf("unloadable dir must exit 2, got %d", code)
	}
	out.Reset()
	errOut.Reset()
	if code := Main([]string{"-analyzers", "nope"}, &out, &errOut); code != 2 {
		t.Errorf("bad flag value must exit 2, got %d", code)
	}
	out.Reset()
	errOut.Reset()
	if code := Main([]string{"-json", "-sarif"}, &out, &errOut); code != 2 {
		t.Errorf("conflicting output modes must exit 2, got %d", code)
	}
	out.Reset()
	errOut.Reset()
	if code := Main([]string{"-dir", filepath.Join("..", "..")}, &out, &errOut); code != 0 {
		t.Errorf("clean module must exit 0, got %d (stderr: %s)", code, errOut.String())
	}
}

// TestBaseline pins the incremental gate: recording the fixture
// findings and re-running against that baseline is clean (exit 0), a
// missing baseline is a tool failure (exit 2), and a baseline with one
// finding removed surfaces exactly the removed finding (exit 1).
func TestBaseline(t *testing.T) {
	fixtures := filepath.Join("..", "..", "internal", "lint", "testdata", "src")
	base := filepath.Join(t.TempDir(), "baseline.json")
	var out, errOut strings.Builder

	if code := Main([]string{"-dir", fixtures, "-modpath", "nbrallgather", "-write-baseline", base}, &out, &errOut); code != 0 {
		t.Fatalf("write-baseline: exit %d, want 0\n%s", code, errOut.String())
	}
	if code := Main([]string{"-dir", fixtures, "-modpath", "nbrallgather", "-baseline", base}, &out, &errOut); code != 0 {
		t.Fatalf("full baseline should absorb every finding: exit %d\n%s%s", code, out.String(), errOut.String())
	}
	if code := Main([]string{"-dir", fixtures, "-modpath", "nbrallgather", "-baseline", filepath.Join(t.TempDir(), "absent.json")}, &out, &errOut); code != 2 {
		t.Fatalf("missing baseline file: exit %d, want 2", code)
	}

	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var findings []lintout.Finding
	if err := json.Unmarshal(data, &findings); err != nil {
		t.Fatal(err)
	}
	if len(findings) < 2 {
		t.Fatalf("baseline holds %d findings, need at least 2", len(findings))
	}
	removed := findings[0]
	trimmed, err := json.Marshal(findings[1:])
	if err != nil {
		t.Fatal(err)
	}
	partial := filepath.Join(t.TempDir(), "partial.json")
	if err := os.WriteFile(partial, trimmed, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := Main([]string{"-dir", fixtures, "-modpath", "nbrallgather", "-baseline", partial}, &out, &errOut); code != 1 {
		t.Fatalf("partial baseline: exit %d, want 1", code)
	}
	if !strings.Contains(out.String(), removed.Message) {
		t.Errorf("new-findings output should contain the un-baselined message %q:\n%s", removed.Message, out.String())
	}
	if got := strings.Count(out.String(), "\n"); got != 1 {
		t.Errorf("only the new finding should print, got %d lines:\n%s", got, out.String())
	}
}

// TestSARIFIncludesInterproceduralRules pins that the SARIF rule table
// carries the call-graph-backed analyzers.
func TestSARIFIncludesInterproceduralRules(t *testing.T) {
	fixtures := filepath.Join("..", "..", "internal", "lint", "testdata", "src")
	var out strings.Builder
	err := run([]string{"-dir", fixtures, "-modpath", "nbrallgather", "-sarif"}, &out)
	if err == nil {
		t.Fatal("fixture tree should produce findings")
	}
	for _, rule := range []string{`"allocdiscipline"`, `"enginesafe"`} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("SARIF output missing rule %s", rule)
		}
	}
}
