package main

import (
	"encoding/json"
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// TestModuleIsClean runs the CLI path over the real module: the tree
// must produce zero findings and a nil error.
func TestModuleIsClean(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-dir", filepath.Join("..", "..")}, &out); err != nil {
		t.Fatalf("lint over module failed: %v\n%s", err, out.String())
	}
	if out.Len() != 0 {
		t.Fatalf("expected no output on a clean module, got:\n%s", out.String())
	}
}

// TestFixturesFail runs the CLI over the golden fixture tree: every
// bad package must surface findings and the run must report an error.
func TestFixturesFail(t *testing.T) {
	fixtures := filepath.Join("..", "..", "internal", "lint", "testdata", "src")
	var out strings.Builder
	err := run([]string{"-dir", fixtures, "-modpath", "nbrallgather"}, &out)
	if err == nil {
		t.Fatalf("fixture tree should produce findings, got none:\n%s", out.String())
	}
	var ef errFindings
	if !errors.As(err, &ef) {
		t.Fatalf("expected errFindings, got %v", err)
	}
	text := out.String()
	for _, want := range []string{
		"[determinism]", "[requestleak]", "[errdiscipline]", "[tagdiscipline]", "[vtclean]",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("fixture output missing %s findings:\n%s", want, text)
		}
	}
}

// TestAnalyzerSubset checks -analyzers filtering: only the requested
// analyzer's findings appear.
func TestAnalyzerSubset(t *testing.T) {
	fixtures := filepath.Join("..", "..", "internal", "lint", "testdata", "src")
	var out strings.Builder
	err := run([]string{"-dir", fixtures, "-modpath", "nbrallgather", "-analyzers", "vtclean"}, &out)
	if err == nil {
		t.Fatal("vtclean subset over fixtures should still fail")
	}
	text := out.String()
	if !strings.Contains(text, "[vtclean]") {
		t.Errorf("missing vtclean findings:\n%s", text)
	}
	if strings.Contains(text, "[tagdiscipline]") {
		t.Errorf("subset run leaked other analyzers:\n%s", text)
	}
}

// TestJSONOutput checks the machine-readable mode round-trips.
func TestJSONOutput(t *testing.T) {
	fixtures := filepath.Join("..", "..", "internal", "lint", "testdata", "src")
	var out strings.Builder
	err := run([]string{"-dir", fixtures, "-modpath", "nbrallgather", "-json"}, &out)
	if err == nil {
		t.Fatal("fixture tree should produce findings")
	}
	var findings []jsonFinding
	if jerr := json.Unmarshal([]byte(out.String()), &findings); jerr != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", jerr, out.String())
	}
	if len(findings) == 0 {
		t.Fatal("JSON output is empty")
	}
	for _, f := range findings {
		if f.File == "" || f.Line <= 0 || f.Analyzer == "" || f.Message == "" {
			t.Fatalf("incomplete finding: %+v", f)
		}
	}
}

// TestUnknownAnalyzer checks the flag validation path.
func TestUnknownAnalyzer(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-analyzers", "nope"}, &out); err == nil {
		t.Fatal("unknown analyzer name should fail")
	}
}
