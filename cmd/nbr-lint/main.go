// Command nbr-lint runs the module's static invariant analyzers
// (internal/lint) and reports findings as file:line: [analyzer]
// message, exiting nonzero when any survive suppression. It is wired
// into `make lint` and CI; see DESIGN.md §8 for the invariants.
//
// Usage:
//
//	nbr-lint [-dir .] [-modpath path] [-analyzers a,b] [-json] [-sarif]
//	         [-baseline findings.json] [-write-baseline findings.json]
//
// A baseline turns the gate incremental: -write-baseline records the
// current findings as JSON, and -baseline fails only on findings not
// present in that file — adopted-code debt stays visible in the
// baseline without blocking unrelated changes. A finding matches the
// baseline on (file, analyzer, message), not line number, so edits
// that merely move code do not resurrect suppressed debt.
//
// Exit codes: 0 — clean; 1 — findings; 2 — the tool itself failed
// (bad flags, unloadable or untypeable source). CI distinguishes "the
// code has violations" from "the linter broke".
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nbrallgather/internal/lint"
	"nbrallgather/internal/lintout"
)

func main() {
	os.Exit(Main(os.Args[1:], os.Stdout, os.Stderr))
}

// Main runs the tool and maps its outcome to the exit-code contract.
func Main(args []string, out, errOut io.Writer) int {
	err := run(args, out)
	if err == nil {
		return 0
	}
	fmt.Fprintln(errOut, err)
	var ef errFindings
	if errors.As(err, &ef) {
		return 1
	}
	return 2
}

// errFindings marks a clean run of the tool that found violations.
type errFindings struct{ n int }

func (e errFindings) Error() string {
	return fmt.Sprintf("nbr-lint: %d finding(s)", e.n)
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nbr-lint", flag.ContinueOnError)
	fs.SetOutput(out)
	dir := fs.String("dir", ".", "module or fixture root to lint")
	modpath := fs.String("modpath", "", "module path override (default: read from <dir>/go.mod)")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	asSARIF := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	baseline := fs.String("baseline", "", "JSON findings file: fail only on findings not in it")
	writeBaseline := fs.String("write-baseline", "", "record current findings to this JSON file and exit 0")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *asJSON && *asSARIF {
		return fmt.Errorf("nbr-lint: -json and -sarif are mutually exclusive")
	}

	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		return err
	}

	var pkgs []*lint.Package
	if *modpath != "" {
		pkgs, err = lint.LoadDir(*dir, *modpath)
	} else {
		pkgs, err = lint.LoadModule(*dir)
	}
	if err != nil {
		return err
	}
	findings := toFindings(lint.RunAnalyzers(pkgs, analyzers))

	if *writeBaseline != "" {
		return lintout.SaveBaseline(*writeBaseline, findings)
	}
	if *baseline != "" {
		findings, err = lintout.FilterBaseline(*baseline, findings)
		if err != nil {
			return fmt.Errorf("nbr-lint: %w", err)
		}
	}

	if *asSARIF {
		if err := lintout.WriteSARIF(out, "nbr-lint", sarifRules(analyzers), findings); err != nil {
			return err
		}
	} else if *asJSON {
		if err := lintout.WriteJSON(out, findings); err != nil {
			return err
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(out, "%s:%d: [%s] %s\n", f.File, f.Line, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		return errFindings{n: len(findings)}
	}
	return nil
}

// toFindings renders diagnostics in the machine-readable shape shared
// with nbr-verify (internal/lintout).
func toFindings(diags []lint.Diagnostic) []lintout.Finding {
	findings := make([]lintout.Finding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, lintout.Finding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return findings
}

// sarifRules is the SARIF rule table: one rule per analyzer plus the
// full-suite-only stale-directive pseudo-analyzer.
func sarifRules(analyzers []*lint.Analyzer) []lintout.Rule {
	rules := make([]lintout.Rule, 0, len(analyzers)+1)
	for _, a := range analyzers {
		rules = append(rules, lintout.Rule{ID: a.Name, Doc: a.Doc})
	}
	rules = append(rules, lintout.Rule{
		ID:  lint.StaleDirectiveName,
		Doc: "flags //lint: directives that no longer suppress anything",
	})
	return rules
}

func selectAnalyzers(names string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if names == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("nbr-lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}
