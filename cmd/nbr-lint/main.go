// Command nbr-lint runs the module's static invariant analyzers
// (internal/lint) and reports findings as file:line: [analyzer]
// message, exiting nonzero when any survive suppression. It is wired
// into `make lint` and CI; see DESIGN.md §8 for the invariants.
//
// Usage:
//
//	nbr-lint [-dir .] [-modpath path] [-analyzers a,b] [-json] [-sarif]
//	         [-baseline findings.json] [-write-baseline findings.json]
//
// A baseline turns the gate incremental: -write-baseline records the
// current findings as JSON, and -baseline fails only on findings not
// present in that file — adopted-code debt stays visible in the
// baseline without blocking unrelated changes. A finding matches the
// baseline on (file, analyzer, message), not line number, so edits
// that merely move code do not resurrect suppressed debt.
//
// Exit codes: 0 — clean; 1 — findings; 2 — the tool itself failed
// (bad flags, unloadable or untypeable source). CI distinguishes "the
// code has violations" from "the linter broke".
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"nbrallgather/internal/lint"
)

func main() {
	os.Exit(Main(os.Args[1:], os.Stdout, os.Stderr))
}

// Main runs the tool and maps its outcome to the exit-code contract.
func Main(args []string, out, errOut io.Writer) int {
	err := run(args, out)
	if err == nil {
		return 0
	}
	fmt.Fprintln(errOut, err)
	var ef errFindings
	if errors.As(err, &ef) {
		return 1
	}
	return 2
}

// errFindings marks a clean run of the tool that found violations.
type errFindings struct{ n int }

func (e errFindings) Error() string {
	return fmt.Sprintf("nbr-lint: %d finding(s)", e.n)
}

// jsonFinding is the machine-readable shape of one diagnostic.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nbr-lint", flag.ContinueOnError)
	fs.SetOutput(out)
	dir := fs.String("dir", ".", "module or fixture root to lint")
	modpath := fs.String("modpath", "", "module path override (default: read from <dir>/go.mod)")
	names := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	asSARIF := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	baseline := fs.String("baseline", "", "JSON findings file: fail only on findings not in it")
	writeBaseline := fs.String("write-baseline", "", "record current findings to this JSON file and exit 0")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *asJSON && *asSARIF {
		return fmt.Errorf("nbr-lint: -json and -sarif are mutually exclusive")
	}

	analyzers, err := selectAnalyzers(*names)
	if err != nil {
		return err
	}

	var pkgs []*lint.Package
	if *modpath != "" {
		pkgs, err = lint.LoadDir(*dir, *modpath)
	} else {
		pkgs, err = lint.LoadModule(*dir)
	}
	if err != nil {
		return err
	}
	diags := lint.RunAnalyzers(pkgs, analyzers)

	if *writeBaseline != "" {
		return saveBaseline(*writeBaseline, diags)
	}
	if *baseline != "" {
		diags, err = filterBaseline(*baseline, diags)
		if err != nil {
			return err
		}
	}

	if *asSARIF {
		if err := writeSARIF(out, analyzers, diags); err != nil {
			return err
		}
	} else if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(toJSON(diags)); err != nil {
			return err
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(out, d.String())
		}
	}
	if len(diags) > 0 {
		return errFindings{n: len(diags)}
	}
	return nil
}

// toJSON renders diagnostics in the machine-readable shape shared by
// -json output and baseline files.
func toJSON(diags []lint.Diagnostic) []jsonFinding {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		findings = append(findings, jsonFinding{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return findings
}

// baselineKey identifies a finding across line drift: two findings
// match when file, analyzer, and message agree.
func baselineKey(f jsonFinding) string {
	return f.File + "\x00" + f.Analyzer + "\x00" + f.Message
}

// saveBaseline records the current findings. Recording is always a
// success: the point is to freeze known debt, however much there is.
func saveBaseline(path string, diags []lint.Diagnostic) error {
	data, err := json.MarshalIndent(toJSON(diags), "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// filterBaseline drops findings present in the baseline file. The
// baseline is a multiset: N occurrences absorb only N findings with
// the same key, so genuinely new duplicates still surface.
func filterBaseline(path string, diags []lint.Diagnostic) ([]lint.Diagnostic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("nbr-lint: reading baseline: %w", err)
	}
	var old []jsonFinding
	if err := json.Unmarshal(data, &old); err != nil {
		return nil, fmt.Errorf("nbr-lint: baseline %s is not a findings JSON array: %w", path, err)
	}
	absorb := map[string]int{}
	for _, f := range old {
		absorb[baselineKey(f)]++
	}
	var fresh []lint.Diagnostic
	for _, d := range diags {
		k := baselineKey(jsonFinding{File: d.Pos.Filename, Analyzer: d.Analyzer, Message: d.Message})
		if absorb[k] > 0 {
			absorb[k]--
			continue
		}
		fresh = append(fresh, d)
	}
	return fresh, nil
}

func selectAnalyzers(names string) ([]*lint.Analyzer, error) {
	all := lint.Analyzers()
	if names == "" {
		return all, nil
	}
	byName := map[string]*lint.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*lint.Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("nbr-lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}
