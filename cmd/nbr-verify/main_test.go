package main

import (
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"

	"nbrallgather/internal/lintout"
)

// TestMatrixCleanExit pins the headline guarantee: the full matrix
// verifies clean, so the tool exits 0 with no output.
func TestMatrixCleanExit(t *testing.T) {
	var out, errOut strings.Builder
	if code := Main(nil, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr:\n%s\nstdout:\n%s", code, errOut.String(), out.String())
	}
	if out.Len() != 0 {
		t.Fatalf("clean run printed: %q", out.String())
	}
}

// TestSingleCaseAndList exercises -case and -list.
func TestSingleCaseAndList(t *testing.T) {
	var out, errOut strings.Builder
	if code := Main([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("-list exit = %d: %s", code, errOut.String())
	}
	names := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(names) < 30 {
		t.Fatalf("matrix lists only %d cases", len(names))
	}
	out.Reset()
	if code := Main([]string{"-case", names[0]}, &out, &errOut); code != 0 {
		t.Fatalf("-case %s exit = %d: %s", names[0], code, errOut.String())
	}
	out.Reset()
	errOut.Reset()
	if code := Main([]string{"-case", "no/such/case"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown case exit = %d, want 2", code)
	}
}

// TestSARIFOutput checks the SARIF log parses and carries the
// invariant rule table.
func TestSARIFOutput(t *testing.T) {
	var out, errOut strings.Builder
	if code := Main([]string{"-sarif"}, &out, &errOut); code != 0 {
		t.Fatalf("-sarif exit = %d: %s", code, errOut.String())
	}
	var log lintout.SARIFLog
	if err := json.Unmarshal([]byte(out.String()), &log); err != nil {
		t.Fatalf("SARIF does not parse: %v", err)
	}
	if log.Runs[0].Tool.Driver.Name != "nbr-verify" {
		t.Fatalf("tool name = %q", log.Runs[0].Tool.Driver.Name)
	}
	ids := map[string]bool{}
	for _, r := range log.Runs[0].Tool.Driver.Rules {
		ids[r.ID] = true
	}
	for _, want := range []string{"completeness", "matching", "deadlock", "loadbound", "avoidance"} {
		if !ids[want] {
			t.Fatalf("rule %q missing from SARIF driver", want)
		}
	}
}

// TestBaselineRoundTrip writes a baseline on a clean matrix (empty
// array) and verifies against it.
func TestBaselineRoundTrip(t *testing.T) {
	base := filepath.Join(t.TempDir(), "plans.json")
	var out, errOut strings.Builder
	if code := Main([]string{"-write-baseline", base}, &out, &errOut); code != 0 {
		t.Fatalf("-write-baseline exit = %d: %s", code, errOut.String())
	}
	if code := Main([]string{"-baseline", base}, &out, &errOut); code != 0 {
		t.Fatalf("-baseline exit = %d: %s", code, errOut.String())
	}
}

// TestLoadTable smoke-tests the -load report.
func TestLoadTable(t *testing.T) {
	var out, errOut strings.Builder
	if code := Main([]string{"-load"}, &out, &errOut); code != 0 {
		t.Fatalf("-load exit = %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "uplink mm") || !strings.Contains(out.String(), "Eq.8") {
		t.Fatalf("load table missing columns:\n%s", out.String())
	}
}

// TestFlagConflict rejects -json with -sarif.
func TestFlagConflict(t *testing.T) {
	var out, errOut strings.Builder
	if code := Main([]string{"-json", "-sarif"}, &out, &errOut); code != 2 {
		t.Fatalf("conflicting flags exit = %d, want 2", code)
	}
}
