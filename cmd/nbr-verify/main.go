// Command nbr-verify runs the static plan verifier
// (internal/planverify) over the conformance shape matrix — or one
// named case — and reports invariant violations as plan/<case>: [rule]
// message, exiting nonzero when any survive the baseline. It proves
// delivery completeness, matching discipline, rendezvous
// deadlock-freedom, and perfmodel load bounds for every built schedule
// without executing it; see DESIGN.md §12.
//
// Usage:
//
//	nbr-verify [-case name] [-list] [-load] [-json] [-sarif]
//	           [-baseline findings.json] [-write-baseline findings.json]
//
// -list prints the matrix case names. -load prints the static
// per-resource load table (max/min and max/mean ratios per case) next
// to the perfmodel cross-check instead of verifying. The baseline
// flags share nbr-lint's incremental-gate semantics and file format
// (internal/lintout), keyed on (file, analyzer, message).
//
// Exit codes: 0 — every plan proven clean; 1 — invariant findings;
// 2 — the tool itself failed (bad flags, unknown case, a builder
// refused the shape).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"nbrallgather/internal/lintout"
	"nbrallgather/internal/planverify"
)

func main() {
	os.Exit(Main(os.Args[1:], os.Stdout, os.Stderr))
}

// Main runs the tool and maps its outcome to the exit-code contract.
func Main(args []string, out, errOut io.Writer) int {
	err := run(args, out)
	if err == nil {
		return 0
	}
	fmt.Fprintln(errOut, err)
	var ef errFindings
	if errors.As(err, &ef) {
		return 1
	}
	return 2
}

// errFindings marks a clean run of the tool that found violations.
type errFindings struct{ n int }

func (e errFindings) Error() string {
	return fmt.Sprintf("nbr-verify: %d finding(s)", e.n)
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nbr-verify", flag.ContinueOnError)
	fs.SetOutput(out)
	caseName := fs.String("case", "", "verify a single matrix case by name (default: all)")
	list := fs.Bool("list", false, "list matrix case names and exit")
	load := fs.Bool("load", false, "print the static load table instead of verifying")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array")
	asSARIF := fs.Bool("sarif", false, "emit findings as a SARIF 2.1.0 log")
	baseline := fs.String("baseline", "", "JSON findings file: fail only on findings not in it")
	writeBaseline := fs.String("write-baseline", "", "record current findings to this JSON file and exit 0")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *asJSON && *asSARIF {
		return fmt.Errorf("nbr-verify: -json and -sarif are mutually exclusive")
	}

	cases, err := selectCases(*caseName)
	if err != nil {
		return err
	}
	if *list {
		for _, c := range cases {
			fmt.Fprintln(out, c.Name)
		}
		return nil
	}
	if *load {
		return loadTable(out, cases)
	}

	var findings []lintout.Finding
	for _, c := range cases {
		s, err := c.Extract()
		if err != nil {
			return fmt.Errorf("nbr-verify: %s: %w", c.Name, err)
		}
		for _, f := range s.Verify() {
			findings = append(findings, toFinding(c.Name, f))
		}
	}

	if *writeBaseline != "" {
		return lintout.SaveBaseline(*writeBaseline, findings)
	}
	if *baseline != "" {
		findings, err = lintout.FilterBaseline(*baseline, findings)
		if err != nil {
			return fmt.Errorf("nbr-verify: %w", err)
		}
	}

	if *asSARIF {
		if err := lintout.WriteSARIF(out, "nbr-verify", rules(), findings); err != nil {
			return err
		}
	} else if *asJSON {
		if err := lintout.WriteJSON(out, findings); err != nil {
			return err
		}
	} else {
		for _, f := range findings {
			fmt.Fprintf(out, "%s:%d: [%s] %s\n", f.File, f.Line, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		return errFindings{n: len(findings)}
	}
	return nil
}

// selectCases resolves the matrix, optionally narrowed to one case.
func selectCases(name string) ([]planverify.Case, error) {
	if name != "" {
		c, err := planverify.FindCase(name)
		if err != nil {
			return nil, err
		}
		return []planverify.Case{c}, nil
	}
	return planverify.Cases()
}

// toFinding maps a plan finding into the shared output shape: the
// synthetic file is plan/<case> and the line anchors the rank (1-based
// so SARIF stays valid; 0 for schedule-global findings).
func toFinding(caseName string, f planverify.Finding) lintout.Finding {
	line := 0
	if f.Rank >= 0 {
		line = f.Rank + 1
	}
	return lintout.Finding{
		File:     "plan/" + caseName,
		Line:     line,
		Analyzer: f.Invariant,
		Message:  f.Message,
	}
}

// rules is the SARIF rule table: one rule per invariant, in sorted
// order for deterministic output.
func rules() []lintout.Rule {
	inv := planverify.Invariants()
	ids := make([]string, 0, len(inv))
	for id := range inv {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	out := make([]lintout.Rule, 0, len(ids))
	for _, id := range ids {
		out = append(out, lintout.Rule{ID: id, Doc: inv[id]})
	}
	return out
}

// loadTable prints the static per-resource load ratios and the
// perfmodel cross-check for every case.
func loadTable(out io.Writer, cases []planverify.Case) error {
	fmt.Fprintf(out, "%-28s %8s %10s %10s %10s %10s %10s\n",
		"case", "msgs", "bytes", "port mm", "port μ", "nic mm", "uplink mm")
	for _, c := range cases {
		s, err := c.Extract()
		if err != nil {
			return fmt.Errorf("nbr-verify: %s: %w", c.Name, err)
		}
		l := s.Load()
		fmt.Fprintf(out, "%-28s %8d %10d %10.3f %10.3f %10.3f %10.3f\n",
			c.Name, l.Msgs(), l.Bytes(),
			planverify.RatioMaxMin(l.RankBytes), planverify.RatioMaxMean(l.RankBytes),
			planverify.RatioMaxMin(l.NICBytes), planverify.RatioMaxMin(l.UplinkBytes))
		if c.Algo == "dh" {
			cc := s.CrossCheck()
			fmt.Fprintf(out, "%-28s %8s δ=%.2f halving ≤ %.0f (Eq.8), N_off=%.2f (Eq.1), static halving mean %.2f\n",
				"", "model:", cc.Delta, cc.HalvingBound, cc.NOff, cc.StaticHalvingMean)
		}
	}
	return nil
}
