// Command nbr-trace inspects a Distance Halving communication pattern:
// it builds the pattern for a workload and prints, for one rank or for
// the aggregate, the halving steps (halves, agent, origin, buffer
// growth), the remainder-phase deliveries, and the pattern-quality
// statistics the paper discusses (agent success rate, message counts,
// worst-case buffer growth).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"nbrallgather/internal/collective"
	"nbrallgather/internal/harness"
	"nbrallgather/internal/mpirt"
	"nbrallgather/internal/pattern"
	"nbrallgather/internal/topology"
	"nbrallgather/internal/trace"
	"nbrallgather/internal/vgraph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "nbr-trace: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nbr-trace", flag.ContinueOnError)
	fs.SetOutput(out)
	nodes := fs.Int("nodes", 4, "number of simulated nodes")
	rps := fs.Int("rps", 6, "ranks per socket")
	delta := fs.Float64("delta", 0.3, "Erdős–Rényi density (ignored with -moore)")
	moore := fs.Int("moore", 0, "Moore radius r on a 2-D grid (0 = random sparse graph)")
	seed := fs.Int64("seed", 1, "graph seed")
	rank := fs.Int("rank", -1, "rank whose plan to print (-1 = summary only)")
	firstFit := fs.Bool("first-fit", false, "use the first-fit agent policy instead of load-aware")
	phases := fs.Bool("phases", false, "run one traced collective and print the halving/remainder phase breakdown")
	msgSize := fs.Int("msg", 1024, "message size for the -phases run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	c := topology.Niagara(*nodes, *rps)
	var g *vgraph.Graph
	var err error
	var workload string
	if *moore > 0 {
		dims, derr := vgraph.MooreDims(c.Ranks(), 2)
		if derr != nil {
			return derr
		}
		g, err = vgraph.Moore(dims, *moore)
		workload = fmt.Sprintf("Moore grid %v r=%d", dims, *moore)
	} else {
		g, err = vgraph.ErdosRenyi(c.Ranks(), *delta, *seed)
		workload = fmt.Sprintf("random sparse δ=%.2f seed=%d", *delta, *seed)
	}
	if err != nil {
		return err
	}

	policy := pattern.PolicyLoadAware
	if *firstFit {
		policy = pattern.PolicyFirstFit
	}
	pat, err := pattern.BuildWithPolicy(g, c.L(), policy)
	if err != nil {
		return err
	}
	if err := pat.Validate(); err != nil {
		return fmt.Errorf("pattern failed validation: %w", err)
	}

	fmt.Fprintf(out, "cluster:  %s\n", c)
	fmt.Fprintf(out, "workload: %s (%d edges, avg out-degree %.1f)\n", workload, g.Edges(), g.AvgOutDegree())
	fmt.Fprintf(out, "pattern:  valid; agent success %.0f%% (%d/%d attempts); worst buffer %d segments\n",
		100*pat.Stats.SuccessRate(), pat.Stats.AgentSuccesses, pat.Stats.AgentAttempts, pat.Stats.MaxBufSources)

	halving, final, selfc := 0, 0, 0
	intra := 0
	for r, plan := range pat.Plans {
		for _, s := range plan.Steps {
			if s.Agent != pattern.NoRank {
				halving++
			}
			selfc += len(s.SelfCopies)
		}
		final += len(plan.FinalSends)
		selfc += len(plan.FinalSelfCopies)
		for _, fsend := range plan.FinalSends {
			if c.SameSocket(r, fsend.Dst) {
				intra++
			}
		}
	}
	fmt.Fprintf(out, "messages: %d halving + %d final (%d intra-socket) + %d local copies; naive would send %d\n",
		halving, final, intra, selfc, g.Edges())

	if *phases {
		tr := trace.New()
		op := collective.NewDistanceHalvingFromPattern(pat)
		_, err := mpirt.Run(mpirt.Config{Cluster: c, Ranks: g.N(), Phantom: true, Trace: tr},
			func(p *mpirt.Proc) { op.Run(p, nil, *msgSize, nil) })
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\n== phase breakdown, m=%s ==\n", harness.FmtBytes(*msgSize))
		trace.Print(out, tr.PhaseBreakdown(collective.DHPhases()))
	}

	if *rank < 0 {
		return nil
	}
	if *rank >= g.N() {
		return fmt.Errorf("rank %d outside communicator of %d", *rank, g.N())
	}
	plan := pat.Plans[*rank]
	fmt.Fprintf(out, "\n== plan for rank %d (out-degree %d, in-degree %d) ==\n",
		*rank, g.OutDegree(*rank), g.InDegree(*rank))
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "step\th1\th2\tagent\torigin\tsend segs\trecv segs\tself copies")
	for t, s := range plan.Steps {
		fmt.Fprintf(tw, "%d\t[%d,%d)\t[%d,%d)\t%s\t%s\t%d\t%d\t%d\n",
			t, s.H1Lo, s.H1Hi, s.H2Lo, s.H2Hi,
			rankOrDash(s.Agent), rankOrDash(s.Origin),
			s.SendCount, len(s.RecvSources), len(s.SelfCopies))
	}
	tw.Flush()
	fmt.Fprintf(out, "final buffer sources (%d): %v\n", len(plan.BufSources), clip(plan.BufSources, 16))
	for _, fsend := range plan.FinalSends {
		fmt.Fprintf(out, "final send → %-4d (%s): sources %v\n",
			fsend.Dst, c.Dist(*rank, fsend.Dst), clip(fsend.Sources, 12))
	}
	if len(plan.FinalRecvs) > 0 {
		fmt.Fprintf(out, "final recvs from: %v\n", clip(plan.FinalRecvs, 16))
	}
	if len(plan.FinalSelfCopies) > 0 {
		fmt.Fprintf(out, "final self copies: %v\n", clip(plan.FinalSelfCopies, 16))
	}
	return nil
}

func rankOrDash(r int) string {
	if r == pattern.NoRank {
		return "-"
	}
	return fmt.Sprint(r)
}

func clip(s []int, n int) []int {
	if len(s) > n {
		return s[:n]
	}
	return s
}
