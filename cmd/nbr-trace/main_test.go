package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke builds a pattern on an 8-rank cluster, runs a traced
// collective for the phase breakdown, and prints one rank's full plan —
// all three output modes in one invocation.
func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-nodes", "2", "-rps", "2", "-rank", "0", "-phases", "-msg", "64"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, want := range []string{"pattern:  valid", "phase breakdown", "plan for rank 0"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunMoore(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nodes", "2", "-rps", "2", "-moore", "1"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "Moore grid") {
		t.Errorf("output missing Moore workload line:\n%s", out.String())
	}
}

func TestRunRankOutOfRange(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-nodes", "2", "-rps", "2", "-rank", "99"}, &out); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
