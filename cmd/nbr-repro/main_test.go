package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmokeScale runs the full reproduction pipeline at the smoke
// scale into a temp directory and checks every expected output file
// exists, is non-empty, and that no stage failed partway.
func TestRunSmokeScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline skipped in -short")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-scale", "smoke", "-out", dir}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if strings.Contains(out.String(), "partial results kept") {
		t.Errorf("a stage failed partway:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "reproduction complete") {
		t.Errorf("missing completion line:\n%s", out.String())
	}
	want := []string{
		"fig2_model.txt",
		"fig45_rsg_8ranks.txt",
		"fig6_moore.txt",
		"fig7_spmm.txt",
		"fig8_overhead.txt",
		"loadbalance.txt",
		"variance.txt",
	}
	for _, name := range want {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("missing output %s: %v", name, err)
			continue
		}
		if fi.Size() == 0 {
			t.Errorf("output %s is empty", name)
		}
	}
}

func TestRunUnknownScale(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scale", "galactic", "-out", t.TempDir()}, &out); err == nil {
		t.Fatal("unknown scale accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
