// Command nbr-repro runs the complete reproduction in one shot — every
// figure and table plus the load-balance study — at a chosen scale, and
// writes the outputs to a results directory. It is the EXPERIMENTS.md
// regeneration entry point.
//
//	nbr-repro                 # laptop scale (~2 minutes)
//	nbr-repro -scale medium   # 540/512-rank shapes (~15 minutes)
//	nbr-repro -scale full     # paper-scale 2160/2048 ranks (hours)
//
// The additional -scale smoke runs every stage at the smallest shapes
// that still exercise the full pipeline (seconds; used by the command's
// own tests).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"nbrallgather/internal/harness"
	"nbrallgather/internal/perfmodel"
	"nbrallgather/internal/topology"
)

type scaleCfg struct {
	rsgNodes, rsgRPS     int // Figs. 4/5
	mooreNodes, mooreRPS int // Fig. 6
	spmmNodes, spmmRPS   int // Fig. 7
	ovNodes, ovRPS       int // Fig. 8
	trials               int
	maxMsg               int
	mooreSizes           []int
	varianceSeeds        int
}

var scales = map[string]scaleCfg{
	"smoke": {
		rsgNodes: 2, rsgRPS: 2, mooreNodes: 2, mooreRPS: 2,
		spmmNodes: 2, spmmRPS: 2, ovNodes: 2, ovRPS: 2,
		trials: 1, maxMsg: 4 << 10, mooreSizes: []int{4 << 10},
		varianceSeeds: 2,
	},
	"small": {
		rsgNodes: 8, rsgRPS: 6, mooreNodes: 8, mooreRPS: 6,
		spmmNodes: 4, spmmRPS: 6, ovNodes: 8, ovRPS: 6,
		trials: 2, maxMsg: 256 << 10, mooreSizes: []int{4 << 10, 256 << 10},
		varianceSeeds: 5,
	},
	"medium": {
		rsgNodes: 15, rsgRPS: 18, mooreNodes: 16, mooreRPS: 16,
		spmmNodes: 4, spmmRPS: 16, ovNodes: 15, ovRPS: 18,
		trials: 2, maxMsg: 1 << 20, mooreSizes: harness.PaperMooreSizes,
		varianceSeeds: 5,
	},
	"full": {
		rsgNodes: 60, rsgRPS: 18, mooreNodes: 64, mooreRPS: 16,
		spmmNodes: 4, spmmRPS: 16, ovNodes: 60, ovRPS: 18,
		trials: 3, maxMsg: 4 << 20, mooreSizes: harness.PaperMooreSizes,
		varianceSeeds: 5,
	},
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "nbr-repro: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nbr-repro", flag.ContinueOnError)
	fs.SetOutput(out)
	scale := fs.String("scale", "small", "smoke | small | medium | full")
	outDir := fs.String("out", "results", "directory for output files")
	seed := fs.Int64("seed", 1, "workload seed")
	wall := fs.Duration("wall", 30*time.Minute, "wall-clock budget per measurement")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, ok := scales[*scale]
	if !ok {
		return fmt.Errorf("unknown scale %q", *scale)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	start := time.Now()

	// withFile runs f writing to outDir/name, tolerating partial
	// failures so one long experiment cannot sink the whole
	// reproduction. Only file-system errors abort the run.
	var fatal error
	withFile := func(name string, f func(io.Writer) error) {
		if fatal != nil {
			return
		}
		path := filepath.Join(*outDir, name)
		fmt.Fprintf(out, "→ %s\n", path)
		file, err := os.Create(path)
		if err != nil {
			fatal = err
			return
		}
		defer file.Close()
		if err := f(file); err != nil {
			fmt.Fprintf(out, "nbr-repro: %s: %v (partial results kept)\n", name, err)
		}
	}

	// Fig. 2 — analytical model (always full paper parameters).
	withFile("fig2_model.txt", func(w io.Writer) error {
		model := perfmodel.NiagaraModel(2160, 18)
		pts := perfmodel.Fig2Series(model, harness.PaperDensities, harness.MsgSizes(8, 4<<20))
		fmt.Fprintln(w, "delta,msg_bytes,t_naive_s,t_dh_s,speedup")
		for _, p := range pts {
			fmt.Fprintf(w, "%g,%d,%g,%g,%g\n", p.Delta, p.Bytes, p.TNaive, p.TDH, p.Speedup)
		}
		return nil
	})

	// Figs. 4 & 5 — random sparse graphs at three scales.
	for _, frac := range []int{4, 2, 1} {
		nodes := cfg.rsgNodes / frac
		if nodes < 1 {
			continue
		}
		c := topology.Niagara(nodes, cfg.rsgRPS)
		name := fmt.Sprintf("fig45_rsg_%dranks.txt", c.Ranks())
		withFile(name, func(w io.Writer) error {
			rows, err := harness.RandomSparseSweep(c, harness.PaperDensities,
				harness.MsgSizes(32, cfg.maxMsg), cfg.trials, *seed, *wall)
			if len(rows) > 0 {
				harness.PrintComparisons(w, fmt.Sprintf("Random Sparse Graphs, %s", c), rows)
			}
			return err
		})
	}

	// Fig. 6 — Moore neighborhoods.
	withFile("fig6_moore.txt", func(w io.Writer) error {
		c := topology.Niagara(cfg.mooreNodes, cfg.mooreRPS)
		rows, err := harness.MooreSweep(c, harness.PaperMooreShapes, cfg.mooreSizes, cfg.trials, *wall)
		if len(rows) > 0 {
			harness.PrintComparisons(w, fmt.Sprintf("Moore neighborhoods, %s", c), rows)
		}
		return err
	})

	// Table II + Fig. 7 — SpMM.
	withFile("fig7_spmm.txt", func(w io.Writer) error {
		c := topology.Niagara(cfg.spmmNodes, cfg.spmmRPS)
		rows, err := harness.SpMMSweep(c, 32, cfg.trials, *seed, *wall)
		if len(rows) > 0 {
			harness.PrintSpMM(w, rows)
		}
		return err
	})

	// Fig. 8 — pattern creation overhead.
	withFile("fig8_overhead.txt", func(w io.Writer) error {
		c := topology.Niagara(cfg.ovNodes, cfg.ovRPS)
		rows, err := harness.OverheadSweep(c, harness.PaperDensities, *seed, *wall)
		if len(rows) > 0 {
			harness.PrintOverhead(w, rows)
		}
		return err
	})

	// Load-balance study (Section IV claim).
	withFile("loadbalance.txt", func(w io.Writer) error {
		c := topology.Niagara(cfg.rsgNodes, cfg.rsgRPS)
		rows, err := harness.LoadBalanceSweep(c, []int{1, 2, 4}, 1024, *wall)
		if len(rows) > 0 {
			harness.PrintLoadBalance(w, rows)
		}
		return err
	})

	// Run-to-run variance across seeded topologies (the paper's
	// repeated-runs methodology).
	withFile("variance.txt", func(w io.Writer) error {
		c := topology.Niagara(cfg.rsgNodes, cfg.rsgRPS)
		var rows []harness.VarianceRow
		for _, d := range []float64{0.1, 0.5} {
			row, err := harness.SeedVariance(c, d, 2048, cfg.varianceSeeds, *wall)
			if err != nil {
				return err
			}
			rows = append(rows, row)
		}
		harness.PrintVariance(w, rows)
		return nil
	})

	if fatal != nil {
		return fatal
	}
	fmt.Fprintf(out, "reproduction complete in %v; outputs in %s/\n",
		time.Since(start).Round(time.Second), *outDir)
	return nil
}
