package main

import (
	"fmt"
	"io"
	"strings"
	"testing"
	"time"

	"nbrallgather/internal/mpirt"
	"nbrallgather/internal/plancache"
	"nbrallgather/internal/tags"
	"nbrallgather/internal/topology"
)

// The -micro section times the runtime hot paths every simulated
// experiment sits on — point-to-point matching, the payload pool via
// its public Send/Recv/Release path, the barrier, and one end-to-end
// neighborhood-exchange step — using testing.Benchmark so the numbers
// are the same ns/op + allocs/op the `go test -bench` suite reports.
// The perf-regression harness diffs these fields across PRs; the P2P
// rows are expected to hold 0 allocs/op.

type microBench struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func microCfg(nodes, rps int) mpirt.Config {
	return mpirt.Config{Cluster: topology.Niagara(nodes, rps), WallLimit: 5 * time.Minute}
}

// runMicro executes the hot-path micro-benchmarks and prints one line
// per row in input order.
func runMicro(out io.Writer) []microBench {
	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		{"p2p/sendrecv", microSendRecv},
		{"p2p/match-indexed", microMatchIndexed},
		{"p2p/match-wildcard", microMatchWildcard},
		{"pool/payload-roundtrip", microPoolRoundtrip},
		{"cache/hit-lookup", microCacheHit},
		{"collective/barrier", microBarrier},
		{"collective/allgather-step", microAllgatherStep},
	}
	rows := make([]microBench, 0, len(benches))
	for _, tc := range benches {
		r := testing.Benchmark(tc.fn)
		row := microBench{
			Name:        tc.name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		rows = append(rows, row)
		fmt.Fprintf(out, "micro %-26s %12.1f ns/op %8d B/op %6d allocs/op\n",
			row.Name, row.NsPerOp, row.BytesPerOp, row.AllocsPerOp)
	}
	return rows
}

// checkZeroAlloc enforces at run time what the allocdiscipline
// analyzer proves statically: the //lint:hotpath closure — matching,
// the payload pool, nonblocking requests — stays allocation-free once
// warm. The p2p/ and pool/ rows measure exactly that closure, so a
// nonzero allocs/op there means escape analysis stopped cooperating
// (or an //lint:allocok site is not as cold as its review claimed).
func checkZeroAlloc(rows []microBench) error {
	var bad []string
	for _, r := range rows {
		hot := strings.HasPrefix(r.Name, "p2p/") || strings.HasPrefix(r.Name, "pool/") ||
			strings.HasPrefix(r.Name, "cache/")
		if hot && r.AllocsPerOp > 0 {
			bad = append(bad, fmt.Sprintf("%s: %d allocs/op", r.Name, r.AllocsPerOp))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("nbr-bench: hot-path rows must hold 0 allocs/op: %s", strings.Join(bad, "; "))
	}
	return nil
}

// microSendRecv is the raw eager round trip between two ranks.
func microSendRecv(b *testing.B) {
	b.ReportAllocs()
	payload := make([]byte, 64)
	if _, err := mpirt.Run(microCfg(1, 2), func(p *mpirt.Proc) {
		for i := 0; i < b.N; i++ {
			switch p.Rank() {
			case 0:
				p.Send(1, tags.BenchPing, len(payload), payload, nil)
				m := p.Recv(1, tags.BenchPong)
				m.Release()
			case 1:
				m := p.Recv(0, tags.BenchPing)
				m.Release()
				p.Send(0, tags.BenchPong, len(payload), payload, nil)
			}
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// microMatchIndexed receives around a 64-message backlog parked on
// other (src, tag) match lists — O(1) with the indexed mailbox.
func microMatchIndexed(b *testing.B) {
	b.ReportAllocs()
	const backlog = 64
	if _, err := mpirt.Run(microCfg(1, 2), func(p *mpirt.Proc) {
		switch p.Rank() {
		case 0:
			for t := 0; t < backlog; t++ {
				p.Send(1, tags.BenchParked+t, 8, nil, nil)
			}
			for i := 0; i < b.N; i++ {
				p.Send(1, tags.BenchPing, 8, nil, nil)
				p.Recv(1, tags.BenchPong)
			}
		case 1:
			for i := 0; i < b.N; i++ {
				p.Recv(0, tags.BenchPing)
				p.Send(0, tags.BenchPong, 8, nil, nil)
			}
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// microMatchWildcard is the AnySource/AnyTag scan path.
func microMatchWildcard(b *testing.B) {
	b.ReportAllocs()
	if _, err := mpirt.Run(microCfg(1, 2), func(p *mpirt.Proc) {
		for i := 0; i < b.N; i++ {
			rot := i % 7
			switch p.Rank() {
			case 0:
				p.Send(1, tags.BenchRotBase+rot, 8, nil, nil)
				p.Recv(1, tags.BenchPong)
			case 1:
				p.Recv(mpirt.AnySource, mpirt.AnyTag)
				p.Send(0, tags.BenchPong, 8, nil, nil)
			}
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// microPoolRoundtrip cycles a mid-size payload through the pool via
// the public path: eager snapshot on Send, Release on receipt.
func microPoolRoundtrip(b *testing.B) {
	b.ReportAllocs()
	payload := make([]byte, 1500)
	if _, err := mpirt.Run(microCfg(1, 2), func(p *mpirt.Proc) {
		for i := 0; i < b.N; i++ {
			switch p.Rank() {
			case 0:
				p.Send(1, tags.BenchPing, len(payload), payload, nil)
				m := p.Recv(1, tags.BenchPong)
				m.Release()
			case 1:
				m := p.Recv(0, tags.BenchPing)
				m.Release()
				p.Send(0, tags.BenchPong, len(payload), payload, nil)
			}
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// microCacheHit is the plan-cache hit path a planner service rides on
// every warm request: one Get against a populated cache. The cache/
// prefix puts it under the zero-alloc guard — a hit must not allocate.
func microCacheHit(b *testing.B) {
	b.ReportAllocs()
	cache := plancache.New(plancache.Config{MaxBytes: 1 << 20})
	key := plancache.Key{Topo: 7, Graph: 42, Algo: "dh", Param: 4}
	if _, err := cache.GetOrBuild(key, func() (any, int64, error) {
		return &struct{ x int }{1}, 128, nil
	}); err != nil {
		b.Fatal(err)
	}
	// A second resident key keeps the LRU touch from degenerating to
	// the head==e fast path alone.
	key2 := plancache.Key{Topo: 8, Graph: 43, Algo: "cn", Param: 2}
	if _, err := cache.GetOrBuild(key2, func() (any, int64, error) {
		return &struct{ x int }{2}, 128, nil
	}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := key
		if i&1 == 1 {
			k = key2
		}
		if _, ok := cache.Get(k); !ok {
			b.Fatal("cache miss on resident key")
		}
	}
}

// microBarrier is the full-communicator barrier on two nodes.
func microBarrier(b *testing.B) {
	b.ReportAllocs()
	if _, err := mpirt.Run(microCfg(2, 4), func(p *mpirt.Proc) {
		for i := 0; i < b.N; i++ {
			p.Barrier()
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// microAllgatherStep is the per-step shape of the halving schedule:
// send a block to the next rank, receive from the previous one, merge.
func microAllgatherStep(b *testing.B) {
	b.ReportAllocs()
	const m = 1024
	if _, err := mpirt.Run(microCfg(1, 4), func(p *mpirt.Proc) {
		n := p.Size()
		r := p.Rank()
		sbuf := make([]byte, m)
		rbuf := make([]byte, m)
		next, prev := (r+1)%n, (r+n-1)%n
		for i := 0; i < b.N; i++ {
			req := p.Irecv(prev, tags.BenchStep)
			p.Send(next, tags.BenchStep, m, sbuf, nil)
			msg := req.Wait()
			copy(rbuf, msg.Data)
			msg.Release()
		}
	}); err != nil {
		b.Fatal(err)
	}
}
