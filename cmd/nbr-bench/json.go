package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"nbrallgather/internal/collective"
	"nbrallgather/internal/harness"
	"nbrallgather/internal/mpirt"
	"nbrallgather/internal/sweep"
	"nbrallgather/internal/topology"
	"nbrallgather/internal/vgraph"
)

// The -json mode emits a machine-readable benchmark snapshot: one cell
// per algorithm at a lean Fig. 4 configuration (two densities × two
// message sizes, phantom payloads), plus the fail-stop recovery
// overhead of every self-healing algorithm with one injected crash.
// Message and byte counts are exactly deterministic; the virtual times
// carry the few percent of run-to-run jitter that shared-resource
// arbitration order introduces (see README "How performance is
// measured").

type benchCell struct {
	Density  float64 `json:"density"`
	MsgBytes int     `json:"msg_bytes"`
	Algo     string  `json:"algo"`
	CNK      int     `json:"cn_k,omitempty"`
	TimeS    float64 `json:"time_s"`
	// PlanS is the host-side plan negotiation time, split out from the
	// virtual collective latency (see harness.Result.PlanWall).
	PlanS float64 `json:"plan_s"`
	Msgs  int64   `json:"msgs"`
	Bytes int64   `json:"bytes"`
}

type benchRecovery struct {
	Algo        string  `json:"algo"`
	Density     float64 `json:"density"`
	MsgBytes    int     `json:"msg_bytes"`
	VictimRank  int     `json:"victim_rank"`
	BaselineS   float64 `json:"baseline_s"`
	FailedS     float64 `json:"failed_s"`
	OverheadS   float64 `json:"overhead_s"`
	Recovered   bool    `json:"recovered"`
	Rounds      int     `json:"rounds"`
	Survivors   int     `json:"survivors"`
	DeadRanks   []int   `json:"dead_ranks"`
	Detections  int64   `json:"detections"`
	DetectTimeS float64 `json:"detect_time_s"`
	Repair      string  `json:"repair"`
}

type benchDoc struct {
	Schema   string          `json:"schema"`
	Cluster  string          `json:"cluster"`
	Ranks    int             `json:"ranks"`
	Trials   int             `json:"trials"`
	Seed     int64           `json:"seed"`
	Fig4     []benchCell     `json:"fig4"`
	Recovery []benchRecovery `json:"recovery"`
	// Micro holds the mpirt hot-path micro-benchmarks (-micro);
	// ns/op and allocs/op straight from testing.Benchmark.
	Micro []microBench `json:"micro,omitempty"`
}

var (
	jsonDensities = []float64{0.1, 0.5}
	jsonMsgSizes  = []int{1 << 10, 1 << 16}
)

func runJSON(out io.Writer, path string, c topology.Cluster, trials int, seed int64, wall time.Duration, micro, assertZeroAlloc bool) error {
	doc := benchDoc{
		Schema:  "nbr-bench/pr5",
		Cluster: c.String(),
		Ranks:   c.Ranks(),
		Trials:  trials,
		Seed:    seed,
	}
	// Fig. 4 cells run concurrently on the sweep pool; printing and the
	// doc rows happen afterwards in cell order, so the report is
	// byte-identical to the sequential loop.
	type fig4Cell struct {
		g *vgraph.Graph
		d float64
		m int
	}
	var fig4Cells []fig4Cell
	for _, d := range jsonDensities {
		g, err := vgraph.ErdosRenyi(c.Ranks(), d, seed+int64(d*1000))
		if err != nil {
			return err
		}
		for _, m := range jsonMsgSizes {
			fig4Cells = append(fig4Cells, fig4Cell{g, d, m})
		}
	}
	cmps, err := sweep.Map(context.Background(), len(fig4Cells), func(i int) (harness.Comparison, error) {
		fc := fig4Cells[i]
		cfg := harness.Config{Cluster: c, MsgSize: fc.m, Trials: trials, Phantom: true, WallLimit: wall}
		return harness.Compare(cfg, fc.g, fmt.Sprintf("delta=%g", fc.d))
	})
	if err != nil {
		var agg *sweep.Error
		if errors.As(err, &agg) {
			err = agg.First().Err
		}
		return err
	}
	for i, cmp := range cmps {
		fc := fig4Cells[i]
		cell := func(algo string, k int, r harness.Result) benchCell {
			return benchCell{
				Density: fc.d, MsgBytes: fc.m, Algo: algo, CNK: k,
				TimeS: r.Mean, PlanS: r.PlanWall.Seconds(),
				Msgs: r.MsgsPerTrial, Bytes: r.BytesPerTrial,
			}
		}
		doc.Fig4 = append(doc.Fig4,
			cell("naive", 0, cmp.Naive),
			cell("distance-halving", 0, cmp.DH),
			cell("common-neighbor", cmp.CNK, cmp.CN))
		fmt.Fprintf(out, "fig4 delta=%g m=%d: naive %.3gs, dh %.3gs, cn(k=%d) %.3gs\n",
			fc.d, fc.m, cmp.Naive.Mean, cmp.DH.Mean, cmp.CNK, cmp.CN.Mean)
	}

	// Recovery overhead: one mid-schedule crash per self-healing
	// algorithm at a single representative cell.
	const recDensity, recMsg = 0.5, 1 << 10
	g, err := vgraph.ErdosRenyi(c.Ranks(), recDensity, seed+int64(recDensity*1000))
	if err != nil {
		return err
	}
	ops, err := recoveryOps(g, c)
	if err != nil {
		return err
	}
	kill := mpirt.Kill{Rank: c.Ranks() / 2, AfterOps: 4}
	cfg := harness.Config{Cluster: c, MsgSize: recMsg, Phantom: true, WallLimit: wall}
	recs, err := sweep.Map(context.Background(), len(ops), func(i int) (harness.RecoveryResult, error) {
		res, err := harness.MeasureRecovery(cfg, ops[i], kill)
		if err != nil {
			return res, fmt.Errorf("recovery %s: %w", ops[i].Name(), err)
		}
		return res, nil
	})
	if err != nil {
		var agg *sweep.Error
		if errors.As(err, &agg) {
			err = agg.First().Err
		}
		return err
	}
	for i, res := range recs {
		op := ops[i]
		doc.Recovery = append(doc.Recovery, benchRecovery{
			Algo: op.Name(), Density: recDensity, MsgBytes: recMsg,
			VictimRank: kill.Rank,
			BaselineS:  res.Baseline, FailedS: res.Failed, OverheadS: res.Overhead,
			Recovered: res.Recovered, Rounds: res.Rounds, Survivors: res.Survivors,
			DeadRanks: res.DeadRanks, Detections: res.Detections,
			DetectTimeS: res.DetectTime, Repair: res.Repair,
		})
		fmt.Fprintf(out, "recovery %s: %s\n", op.Name(), res)
	}

	if micro {
		doc.Micro = runMicro(out)
		if assertZeroAlloc {
			if err := checkZeroAlloc(doc.Micro); err != nil {
				return err
			}
		}
	}

	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d fig4 cells, %d recovery rows)\n", path, len(doc.Fig4), len(doc.Recovery))
	return nil
}

func recoveryOps(g *vgraph.Graph, c topology.Cluster) ([]collective.VOp, error) {
	dh, err := collective.NewDistanceHalving(g, c.L())
	if err != nil {
		return nil, err
	}
	cn, err := collective.NewCommonNeighbor(g, 2)
	if err != nil {
		return nil, err
	}
	lb, err := collective.NewLeaderBased(g, c)
	if err != nil {
		return nil, err
	}
	return []collective.VOp{collective.NewNaive(g), dh, cn, lb}, nil
}
