package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives the full three-figure pipeline at the smallest
// cluster that exercises every code path (8 ranks, one trial, tiny
// messages).
func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-nodes", "2", "-rps", "2", "-trials", "1", "-max-msg", "1024"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, want := range []string{"Fig. 4", "Fig. 5", "Fig. 6"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "partial results kept") {
		t.Errorf("a sweep failed partway:\n%s", out.String())
	}
}

func TestRunSingleFigureCSV(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-fig", "4", "-nodes", "2", "-rps", "2", "-trials", "1", "-max-msg", "512", "-csv"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if s := out.String(); strings.Contains(s, "Fig. 5") || strings.Contains(s, "Fig. 6") {
		t.Errorf("-fig 4 ran other figures:\n%s", s)
	}
}

// TestRunMega drives the mega-scale sweep at a toy size (1024 ranks)
// and checks the JSON snapshot carries one row per algorithm with
// non-zero traffic and memory statistics.
func TestRunMega(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mega.json")
	var out bytes.Buffer
	err := run([]string{"-mega", "-mega-ranks", "1024", "-json", path}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	var doc megaDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("snapshot not valid JSON: %v", err)
	}
	if doc.Schema != "nbr-bench/pr6-mega" || doc.Engine != "event" || doc.Ranks != 1024 {
		t.Errorf("snapshot header wrong: %+v", doc)
	}
	if len(doc.Rows) != 3 {
		t.Fatalf("want 3 algorithm rows, got %d", len(doc.Rows))
	}
	for _, row := range doc.Rows {
		if row.TimeS <= 0 || row.Msgs <= 0 || row.Bytes <= 0 {
			t.Errorf("row %s has empty measurement: %+v", row.Algo, row)
		}
		if row.Mem.AllocBytes == 0 {
			t.Errorf("row %s recorded no allocation churn", row.Algo)
		}
	}
}

// TestRunMegaRejectsBadShape pins the flag contract: -mega needs -json
// and a rank count the 64-rank nodes can host exactly.
func TestRunMegaRejectsBadShape(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-mega"}, &out); err == nil {
		t.Error("-mega without -json accepted")
	}
	if err := run([]string{"-mega", "-mega-ranks", "100", "-json", filepath.Join(t.TempDir(), "m.json")}, &out); err == nil {
		t.Error("non-multiple-of-64 rank count accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestProfilingFlags runs a small figure with -cpuprofile/-memprofile
// and checks both profiles land on disk non-empty (pprof's proto
// encoding; contents are opaque here).
func TestProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	err := run([]string{"-fig", "4", "-nodes", "2", "-rps", "2", "-trials", "1", "-max-msg", "256",
		"-cpuprofile", cpu, "-memprofile", mem}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

// TestRunDegradation drives the degraded-fabric measurement at a toy
// shape and checks the pr7 JSON snapshot: every scenario × algorithm
// row present, and the nic-down scenario actually routes at least one
// algorithm through the repair path.
func TestRunDegradation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_pr7.json")
	var out bytes.Buffer
	err := run([]string{"-degradation", "-nodes", "4", "-rps", "2", "-deg-msg", "65536", "-json", path}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc degDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if doc.Schema != "nbr-bench/pr7" {
		t.Errorf("schema %q, want nbr-bench/pr7", doc.Schema)
	}
	if len(doc.Degradation) != 12 {
		t.Fatalf("%d degradation rows, want 12 (3 scenarios × 4 algorithms)", len(doc.Degradation))
	}
	repaired := false
	for _, r := range doc.Degradation {
		if r.BaselineS <= 0 || r.DegradedS <= 0 {
			t.Errorf("%s/%s: empty measurement %+v", r.Scenario, r.Algo, r)
		}
		if r.Scenario == "nic-down" && r.Recovered {
			repaired = true
			if r.LinkDetections == 0 {
				t.Errorf("%s/%s: repair with no link detections", r.Scenario, r.Algo)
			}
		}
	}
	if !repaired {
		t.Error("nic-down scenario never exercised the repair path")
	}
}

// TestRunDegradationExclusiveWithMega pins the mode exclusivity.
func TestRunDegradationExclusiveWithMega(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-degradation", "-mega"}, &out); err == nil {
		t.Fatal("-degradation with -mega accepted")
	}
}

// TestCheckZeroAlloc pins the alloc-guard policy: p2p/ and pool/ rows
// must hold 0 allocs/op, collective rows are measured but not gated.
func TestCheckZeroAlloc(t *testing.T) {
	clean := []microBench{
		{Name: "p2p/sendrecv"},
		{Name: "pool/payload-roundtrip"},
		{Name: "collective/barrier", AllocsPerOp: 3},
	}
	if err := checkZeroAlloc(clean); err != nil {
		t.Errorf("collective allocs must not trip the guard: %v", err)
	}
	dirty := []microBench{{Name: "p2p/sendrecv", AllocsPerOp: 2}}
	err := checkZeroAlloc(dirty)
	if err == nil {
		t.Fatal("p2p allocs must trip the guard")
	}
	if !strings.Contains(err.Error(), "p2p/sendrecv: 2 allocs/op") {
		t.Errorf("error should name the offending row: %v", err)
	}
}

// TestAssertZeroAllocRequiresMicro pins the flag dependency.
func TestAssertZeroAllocRequiresMicro(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-assert-zero-alloc"}, &out); err == nil {
		t.Fatal("-assert-zero-alloc without -micro accepted")
	}
}
