package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives the full three-figure pipeline at the smallest
// cluster that exercises every code path (8 ranks, one trial, tiny
// messages).
func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-nodes", "2", "-rps", "2", "-trials", "1", "-max-msg", "1024"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, want := range []string{"Fig. 4", "Fig. 5", "Fig. 6"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if strings.Contains(out.String(), "partial results kept") {
		t.Errorf("a sweep failed partway:\n%s", out.String())
	}
}

func TestRunSingleFigureCSV(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-fig", "4", "-nodes", "2", "-rps", "2", "-trials", "1", "-max-msg", "512", "-csv"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if s := out.String(); strings.Contains(s, "Fig. 5") || strings.Contains(s, "Fig. 6") {
		t.Errorf("-fig 4 ran other figures:\n%s", s)
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestProfilingFlags runs a small figure with -cpuprofile/-memprofile
// and checks both profiles land on disk non-empty (pprof's proto
// encoding; contents are opaque here).
func TestProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	err := run([]string{"-fig", "4", "-nodes", "2", "-rps", "2", "-trials", "1", "-max-msg", "256",
		"-cpuprofile", cpu, "-memprofile", mem}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}
