package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"nbrallgather/internal/collective"
	"nbrallgather/internal/harness"
	"nbrallgather/internal/netmodel"
	"nbrallgather/internal/sweep"
	"nbrallgather/internal/topology"
	"nbrallgather/internal/vgraph"
)

// The -degradation mode quantifies what a wounded fabric costs each
// self-healing algorithm: healthy completion time against completion
// time under injected link faults. Degrade-only scenarios (slower
// uplinks/NICs) measure pure bandwidth loss on a shared random graph;
// the nic-down scenario measures the full detect → revoke → agree →
// topology-aware-rebuild path on a graph that keeps the wounded node
// feasible (its ranks only talk among themselves).

type degRow struct {
	Algo            string  `json:"algo"`
	Scenario        string  `json:"scenario"`
	BaselineS       float64 `json:"baseline_s"`
	DegradedS       float64 `json:"degraded_s"`
	OverheadS       float64 `json:"overhead_s"`
	Slowdown        float64 `json:"slowdown"`
	Recovered       bool    `json:"recovered"`
	Rounds          int     `json:"rounds"`
	Repair          string  `json:"repair"`
	LinkDetections  int64   `json:"link_detections"`
	LinkDetectTimeS float64 `json:"link_detect_time_s"`
}

type degDoc struct {
	Schema      string   `json:"schema"`
	Cluster     string   `json:"cluster"`
	Ranks       int      `json:"ranks"`
	MsgBytes    int      `json:"msg_bytes"`
	Seed        int64    `json:"seed"`
	Degradation []degRow `json:"degradation"`
}

// degScenario pairs a fault schedule with the graph it must run on and
// the CN share-group size that makes the scenario meaningful.
type degScenario struct {
	name   string
	graph  *vgraph.Graph
	faults []netmodel.LinkFault
	cnK    int
}

// degradationScenarios builds the measured fabric woundings for c.
func degradationScenarios(c topology.Cluster, seed int64) ([]degScenario, error) {
	n := c.Ranks()
	er, err := vgraph.ErdosRenyi(n, 0.5, seed)
	if err != nil {
		return nil, err
	}
	// Island graph: node 1's ranks keep only intra-node edges, so its
	// NIC can die and every remaining edge stays deliverable.
	perNode := n / c.Nodes
	island := func(r int) bool { return r/perNode == 1 }
	lists := make([][]int, n)
	for u := 0; u < n; u++ {
		for _, v := range er.Out(u) {
			if island(u) == island(v) {
				lists[u] = append(lists[u], v)
			}
		}
	}
	// Keep the island internally connected even if the ER draw missed
	// an edge (a rank with no out-edges is fine; an unreachable segment
	// is not — the ring guarantees delivery coverage).
	for r := perNode; r < 2*perNode; r++ {
		next := perNode + (r+1-perNode)%perNode
		if next != r {
			found := false
			for _, v := range lists[r] {
				if v == next {
					found = true
					break
				}
			}
			if !found {
				lists[r] = append(lists[r], next)
			}
		}
	}
	relay, err := vgraph.FromOutLists(n, lists)
	if err != nil {
		return nil, err
	}
	degradeUplinks := make([]netmodel.LinkFault, c.Groups())
	for g := range degradeUplinks {
		degradeUplinks[g] = netmodel.LinkDegraded(netmodel.UplinkOf(g), 0, 4)
	}
	degradeNICs := make([]netmodel.LinkFault, c.Nodes)
	for nd := range degradeNICs {
		degradeNICs[nd] = netmodel.LinkDegraded(netmodel.NICOf(nd), 0, 4)
	}
	// The nic-down scenario only exercises the repair path when some
	// relay schedule crosses the dead NIC: CN's rank-consecutive share
	// chunks must straddle the island boundary, so pick the smallest
	// chunk size that does not divide the per-node rank count.
	straddleK := 3
	for perNode%straddleK == 0 && straddleK <= perNode {
		straddleK++
	}
	return []degScenario{
		{"uplinks-degraded-4x", er, degradeUplinks, 2},
		{"nics-degraded-4x", er, degradeNICs, 2},
		{"nic-down", relay, []netmodel.LinkFault{netmodel.LinkDown(netmodel.NICOf(1), 0)}, straddleK},
	}, nil
}

// degOps builds the measured algorithm set over g with the scenario's
// CN share-group size.
func degOps(g *vgraph.Graph, c topology.Cluster, cnK int) ([]collective.VOp, error) {
	dh, err := collective.NewDistanceHalving(g, c.L())
	if err != nil {
		return nil, err
	}
	cn, err := collective.NewCommonNeighbor(g, cnK)
	if err != nil {
		return nil, err
	}
	lb, err := collective.NewLeaderBased(g, c)
	if err != nil {
		return nil, err
	}
	return []collective.VOp{collective.NewNaive(g), dh, cn, lb}, nil
}

func runDegradation(out io.Writer, path string, c topology.Cluster, msgSize int, seed int64, wall time.Duration) error {
	// A degraded-uplink scenario needs uplinks that carry traffic:
	// re-group single-group clusters so the fabric has a global tier
	// to wound.
	if c.Groups() < 2 && c.Nodes >= 2 {
		c.NodesPerGroup = (c.Nodes + 1) / 2
	}
	scenarios, err := degradationScenarios(c, seed)
	if err != nil {
		return err
	}
	type job struct {
		sc degScenario
		op collective.VOp
	}
	var jobs []job
	for _, sc := range scenarios {
		ops, err := degOps(sc.graph, c, sc.cnK)
		if err != nil {
			return err
		}
		for _, op := range ops {
			jobs = append(jobs, job{sc, op})
		}
	}
	cfg := harness.Config{Cluster: c, MsgSize: msgSize, Phantom: true, WallLimit: wall}
	results, err := sweep.Map(context.Background(), len(jobs), func(i int) (harness.DegradationResult, error) {
		res, err := harness.MeasureDegradation(cfg, jobs[i].op, jobs[i].sc.faults)
		if err != nil {
			return res, fmt.Errorf("degradation %s/%s: %w", jobs[i].sc.name, jobs[i].op.Name(), err)
		}
		return res, nil
	})
	if err != nil {
		var agg *sweep.Error
		if errors.As(err, &agg) {
			err = agg.First().Err
		}
		return err
	}

	doc := degDoc{
		Schema:   "nbr-bench/pr7",
		Cluster:  c.String(),
		Ranks:    c.Ranks(),
		MsgBytes: msgSize,
		Seed:     seed,
	}
	for i, res := range results {
		j := jobs[i]
		doc.Degradation = append(doc.Degradation, degRow{
			Algo: j.op.Name(), Scenario: j.sc.name,
			BaselineS: res.Baseline, DegradedS: res.Degraded,
			OverheadS: res.Overhead, Slowdown: res.Slowdown,
			Recovered: res.Recovered, Rounds: res.Rounds, Repair: res.Repair,
			LinkDetections: res.LinkDetections, LinkDetectTimeS: res.LinkDetectTime,
		})
		fmt.Fprintf(out, "degradation %s %s: %s\n", j.sc.name, j.op.Name(), res)
	}

	if path == "" {
		return nil
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d degradation rows)\n", path, len(doc.Degradation))
	return nil
}
