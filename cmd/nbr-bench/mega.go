package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"nbrallgather/internal/collective"
	"nbrallgather/internal/harness"
	"nbrallgather/internal/mpirt"
	"nbrallgather/internal/topology"
	"nbrallgather/internal/vgraph"
)

// The -mega mode exercises the event engine at communicator sizes the
// goroutine-per-rank default was never tuned for: a 2-D Moore
// neighborhood over ≥100k ranks with phantom payloads, measured under
// the naive, Distance Halving and Common Neighbor algorithms. Payload
// buffers would be ~100 GB at this scale, so the run only makes sense
// phantom; the event engine keeps it deterministic, and Go heap
// statistics are captured around every measurement so the snapshot
// doubles as a memory regression baseline.

// megaCNK is the Common Neighbor group size used at mega scale. The
// best-K sweep (six measurements per cell) is deliberately skipped:
// one fixed consecutive-block K keeps the run's wall-clock bounded.
const megaCNK = 8

type megaMem struct {
	// HeapLiveBytes is the live heap after the run, without an
	// intervening collection (each measurement starts from a forced
	// GC, so this tracks what the run itself kept reachable).
	HeapLiveBytes uint64 `json:"heap_live_bytes"`
	// AllocBytes is the total allocation churn of the measurement.
	AllocBytes uint64 `json:"alloc_bytes"`
	// SysBytes is the OS-visible footprint after the run.
	SysBytes uint64 `json:"sys_bytes"`
	// NumGC is the number of collections the measurement triggered.
	NumGC uint32 `json:"num_gc"`
}

type megaRow struct {
	Algo        string  `json:"algo"`
	CNK         int     `json:"cn_k,omitempty"`
	TimeS       float64 `json:"time_s"`
	Msgs        int64   `json:"msgs"`
	Bytes       int64   `json:"bytes"`
	MaxRankMsgs int64   `json:"max_rank_msgs"`
	WallMS      int64   `json:"wall_ms"`
	Mem         megaMem `json:"mem"`
}

type megaDoc struct {
	Schema   string    `json:"schema"`
	Engine   string    `json:"engine"`
	Cluster  string    `json:"cluster"`
	Ranks    int       `json:"ranks"`
	Dims     []int     `json:"dims"`
	Radius   int       `json:"radius"`
	MsgBytes int       `json:"msg_bytes"`
	Rows     []megaRow `json:"rows"`
}

// megaCluster shapes a Niagara-like machine hosting exactly n ranks
// (32 ranks per socket, two sockets per node).
func megaCluster(n int) (topology.Cluster, error) {
	const perNode = 64
	if n < perNode || n%perNode != 0 {
		return topology.Cluster{}, fmt.Errorf("mega rank count %d must be a positive multiple of %d", n, perNode)
	}
	return topology.Niagara(n/perNode, 32), nil
}

func runMega(out io.Writer, path string, ranks, msgSize int, wall time.Duration) error {
	if path == "" {
		return fmt.Errorf("-mega requires -json")
	}
	c, err := megaCluster(ranks)
	if err != nil {
		return err
	}
	dims, err := vgraph.MooreDims(ranks, 2)
	if err != nil {
		return err
	}
	g, err := vgraph.Moore(dims, 1)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "mega sweep: %d ranks (Moore %v r=1, %d neighbors/rank), engine %s, phantom %d B payloads\n",
		g.N(), dims, g.OutDegree(0), mpirt.EngineEvent, msgSize)

	doc := megaDoc{
		Schema:   "nbr-bench/pr6-mega",
		Engine:   string(mpirt.EngineEvent),
		Cluster:  c.String(),
		Ranks:    g.N(),
		Dims:     dims,
		Radius:   1,
		MsgBytes: msgSize,
	}
	cfg := harness.Config{
		Cluster:   c,
		MsgSize:   msgSize,
		Trials:    1,
		Phantom:   true,
		WallLimit: wall,
		Engine:    mpirt.EngineEvent,
	}

	dh, err := collective.NewDistanceHalving(g, c.L())
	if err != nil {
		return err
	}
	cn, err := collective.NewCommonNeighbor(g, megaCNK)
	if err != nil {
		return err
	}
	cells := []struct {
		algo string
		cnk  int
		op   collective.Op
	}{
		{"naive", 0, collective.NewNaive(g)},
		{"distance-halving", 0, dh},
		{"common-neighbor", megaCNK, cn},
	}
	// Cells run sequentially: at this scale each measurement owns the
	// whole heap, and sequencing keeps the per-cell memory statistics
	// attributable.
	for _, cell := range cells {
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		res, err := harness.Measure(cfg, cell.op)
		if err != nil {
			return fmt.Errorf("mega %s: %w", cell.algo, err)
		}
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		row := megaRow{
			Algo: cell.algo, CNK: cell.cnk,
			TimeS: res.Mean, Msgs: res.MsgsPerTrial, Bytes: res.BytesPerTrial,
			MaxRankMsgs: res.MaxRankMsgs, WallMS: res.Wall.Milliseconds(),
			Mem: megaMem{
				HeapLiveBytes: after.HeapAlloc,
				AllocBytes:    after.TotalAlloc - before.TotalAlloc,
				SysBytes:      after.Sys,
				NumGC:         after.NumGC - before.NumGC,
			},
		}
		doc.Rows = append(doc.Rows, row)
		fmt.Fprintf(out, "mega %s: %.3gs virtual, %d msgs, wall %s, heap %d MiB live / %d MiB churned\n",
			cell.algo, row.TimeS, row.Msgs, res.Wall.Round(time.Millisecond),
			row.Mem.HeapLiveBytes>>20, row.Mem.AllocBytes>>20)
	}

	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d mega rows)\n", path, len(doc.Rows))
	return nil
}
