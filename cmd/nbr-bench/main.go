// Command nbr-bench regenerates the paper's micro-benchmark figures:
//
//	Fig. 4 — neighborhood allgather latency on Random Sparse Graphs
//	          (DH vs default), densities × message sizes
//	Fig. 5 — speedup scaling of DH and Common Neighbor over default
//	          across communicator sizes
//	Fig. 6 — Moore-neighborhood speedups at small/medium/large messages
//
// Default configurations are scaled down so a run finishes in minutes
// on a laptop; pass -full for the paper-scale shapes (2160 ranks over
// 60 nodes for Figs. 4/5, 2048 ranks over 64 nodes for Fig. 6 — budget
// tens of minutes and several GB of RAM).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"nbrallgather/internal/harness"
	"nbrallgather/internal/prof"
	"nbrallgather/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "nbr-bench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nbr-bench", flag.ContinueOnError)
	fs.SetOutput(out)
	fig := fs.Int("fig", 0, "figure to regenerate: 4, 5 or 6 (0 = all)")
	nodes := fs.Int("nodes", 8, "number of simulated nodes")
	rps := fs.Int("rps", 6, "ranks per socket (paper: 18 for Figs. 4/5, 16 for Fig. 6)")
	trials := fs.Int("trials", 3, "timed repetitions per cell")
	seed := fs.Int64("seed", 1, "workload generator seed")
	full := fs.Bool("full", false, "paper-scale configuration (slow)")
	csv := fs.Bool("csv", false, "emit CSV instead of tables")
	minMsg := fs.Int("min-msg", 32, "smallest message size in bytes")
	maxMsg := fs.Int("max-msg", 1<<20, "largest message size in bytes")
	wall := fs.Duration("wall", 10*time.Minute, "wall-clock budget per measurement")
	scatter := fs.Bool("scatter", false, "scatter nodes across Dragonfly+ groups (the batch-scheduler placement the paper's jobs got); matters for structured topologies")
	jsonPath := fs.String("json", "", "write the machine-readable benchmark (per-algorithm Fig. 4 cells plus fail-stop recovery overhead) to this path and exit")
	micro := fs.Bool("micro", false, "run the mpirt hot-path micro-benchmarks (match, pool, barrier, allgather step); alone they print and exit, with -json they join the snapshot")
	assertZeroAlloc := fs.Bool("assert-zero-alloc", false, "with -micro, exit nonzero when a p2p/ or pool/ row reports allocs/op > 0 — the dynamic check of the allocdiscipline lint guarantee")
	mega := fs.Bool("mega", false, "with -json, run the mega-scale phantom sweep (event engine, Moore neighborhood over -mega-ranks ranks) instead of the figure benchmarks")
	degradation := fs.Bool("degradation", false, "measure degraded-fabric overhead (link faults: slow uplinks/NICs, a down NIC) per self-healing algorithm instead of the figure benchmarks; -json writes the nbr-bench/pr7 document")
	degMsg := fs.Int("deg-msg", 1<<18, "per-rank payload size in bytes for -degradation")
	megaRanks := fs.Int("mega-ranks", 102400, "communicator size for -mega (multiple of 64)")
	megaMsg := fs.Int("mega-msg", 4096, "per-rank payload size in bytes for -mega")
	pf := prof.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *full {
		*nodes, *rps = 60, 18
	}
	place := func(c topology.Cluster) topology.Cluster {
		if *scatter {
			return c.Scattered(*seed)
		}
		return c
	}

	return pf.Wrap(func() error {
		if *mega && *degradation {
			return fmt.Errorf("-mega and -degradation are mutually exclusive")
		}
		if *mega {
			return runMega(out, *jsonPath, *megaRanks, *megaMsg, *wall)
		}
		if *degradation {
			return runDegradation(out, *jsonPath, place(topology.Niagara(*nodes, *rps)), *degMsg, *seed, *wall)
		}
		return runFigs(out, place, *fig, *nodes, *rps, *trials, *seed, *full, *csv, *minMsg, *maxMsg, *wall, *jsonPath, *micro, *assertZeroAlloc)
	})
}

func runFigs(out io.Writer, place func(topology.Cluster) topology.Cluster, fig, nodes, rps, trials int, seed int64, full, csv bool, minMsg, maxMsg int, wall time.Duration, jsonPath string, micro, assertZeroAlloc bool) error {
	if jsonPath != "" {
		return runJSON(out, jsonPath, place(topology.Niagara(nodes, rps)), trials, seed, wall, micro, assertZeroAlloc)
	}
	if micro {
		rows := runMicro(out)
		if assertZeroAlloc {
			return checkZeroAlloc(rows)
		}
		return nil
	}
	if assertZeroAlloc {
		return fmt.Errorf("-assert-zero-alloc requires -micro")
	}

	run4 := fig == 0 || fig == 4
	run5 := fig == 0 || fig == 5
	run6 := fig == 0 || fig == 6

	if run4 {
		c := place(topology.Niagara(nodes, rps))
		fmt.Fprintf(out, "Fig. 4 cluster: %s\n", c)
		rows, err := harness.RandomSparseSweep(c, harness.PaperDensities,
			harness.MsgSizes(minMsg, maxMsg), trials, seed, wall)
		if err := report(out, rows, err, csv, "Fig. 4 — Random Sparse Graph latency"); err != nil {
			return err
		}
	}
	if run5 {
		scales := []int{nodes / 4, nodes / 2, nodes}
		if full {
			scales = []int{15, 30, 60}
		}
		for _, nn := range scales {
			if nn < 1 {
				continue
			}
			c := place(topology.Niagara(nn, rps))
			fmt.Fprintf(out, "Fig. 5 cluster: %s\n", c)
			rows, err := harness.RandomSparseSweep(c, harness.PaperDensities,
				harness.MsgSizes(minMsg, maxMsg), trials, seed, wall)
			if err := report(out, rows, err, csv, fmt.Sprintf("Fig. 5 — speedup scaling, %d ranks", c.Ranks())); err != nil {
				return err
			}
		}
	}
	if run6 {
		mooreNodes, mooreRPS := nodes, rps
		if full {
			mooreNodes, mooreRPS = 64, 16
		}
		c := place(topology.Niagara(mooreNodes, mooreRPS))
		fmt.Fprintf(out, "Fig. 6 cluster: %s\n", c)
		sizes := []int{4 << 10, 256 << 10, 4 << 20}
		if !full {
			sizes = []int{4 << 10, 256 << 10}
		}
		rows, err := harness.MooreSweep(c, harness.PaperMooreShapes, sizes, trials, wall)
		if err := report(out, rows, err, csv, "Fig. 6 — Moore neighborhoods"); err != nil {
			return err
		}
	}
	return nil
}

// report prints one figure's rows. A sweep error with partial rows is
// reported but not fatal, so one stalled cell cannot sink the run.
func report(out io.Writer, rows []harness.Comparison, err error, csv bool, title string) error {
	if err != nil {
		if len(rows) == 0 {
			return err
		}
		fmt.Fprintf(out, "nbr-bench: %v (partial results kept)\n", err)
	}
	if csv {
		harness.CSVComparisons(out, rows)
		return nil
	}
	harness.PrintComparisons(out, title, rows)
	return nil
}
