// Command nbr-model regenerates Fig. 2 — the Section V analytical
// performance model's predictions for the naive and Distance Halving
// algorithms — and validates the model against the simulator: for each
// (density, message size) cell it prints the predicted and the
// simulated latency ratio, the paper's Section VII-A model-validation
// claim.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"
	"time"

	"nbrallgather/internal/collective"
	"nbrallgather/internal/harness"
	"nbrallgather/internal/netmodel"
	"nbrallgather/internal/perfmodel"
	"nbrallgather/internal/topology"
	"nbrallgather/internal/vgraph"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "nbr-model: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nbr-model", flag.ContinueOnError)
	fs.SetOutput(out)
	n := fs.Int("n", 2160, "communicator size for the analytical model")
	l := fs.Int("l", 18, "ranks per socket")
	validate := fs.Bool("validate", false, "also run the simulator and compare (scaled cluster)")
	valNodes := fs.Int("validate-nodes", 8, "nodes for the validation runs")
	csv := fs.Bool("csv", false, "emit CSV instead of tables")
	seed := fs.Int64("seed", 1, "graph seed for validation runs")
	calibrate := fs.Bool("calibrate", false, "fit the model's α/β from simulated ping-pong tests (the paper's methodology) instead of the built-in constants")
	if err := fs.Parse(args); err != nil {
		return err
	}

	model := perfmodel.NiagaraModel(*n, *l)
	if *calibrate {
		fitted, err := perfmodel.Calibrate(topology.Niagara(2, *l), netmodel.NiagaraParams(), perfmodel.CalibrationSizes)
		if err != nil {
			return fmt.Errorf("calibration: %w", err)
		}
		model.Alpha, model.Beta = fitted.Alpha, fitted.Beta
		fmt.Fprintf(out, "calibrated from ping-pong: α=%.3gµs, β=%.3g GB/s\n",
			model.Alpha*1e6, model.Beta/1e9)
	}
	sizes := harness.MsgSizes(8, 4<<20)
	pts := perfmodel.Fig2Series(model, harness.PaperDensities, sizes)

	if *csv {
		fmt.Fprintln(out, "delta,msg_bytes,t_naive_s,t_dh_s,speedup")
		for _, p := range pts {
			fmt.Fprintf(out, "%g,%d,%g,%g,%g\n", p.Delta, p.Bytes, p.TNaive, p.TDH, p.Speedup)
		}
	} else {
		fmt.Fprintf(out, "== Fig. 2 — performance model, n=%d S=2 L=%d ==\n", *n, *l)
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "density\tmsg\tT(naive)\tT(DH)\tpredicted speedup")
		for _, p := range pts {
			fmt.Fprintf(tw, "δ=%.2f\t%s\t%s\t%s\t%.2fx\n",
				p.Delta, harness.FmtBytes(p.Bytes),
				harness.FmtTime(p.TNaive), harness.FmtTime(p.TDH), p.Speedup)
		}
		tw.Flush()
	}

	if !*validate {
		return nil
	}
	c := topology.Niagara(*valNodes, 6)
	simModel := perfmodel.NiagaraModel(c.Ranks(), c.L())
	fmt.Fprintf(out, "\n== Model vs simulation, %s ==\n", c)
	tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "density\tmsg\tmodel speedup\tsimulated speedup")
	for _, d := range []float64{0.05, 0.3, 0.7} {
		g, err := vgraph.ErdosRenyi(c.Ranks(), d, *seed)
		if err != nil {
			return err
		}
		dh, err := collective.NewDistanceHalving(g, c.L())
		if err != nil {
			return err
		}
		for _, m := range []int{32, 2048, 65536} {
			cfg := harness.Config{Cluster: c, MsgSize: m, Trials: 2, Phantom: true, WallLimit: 5 * time.Minute}
			naive, err := harness.Measure(cfg, collective.NewNaive(g))
			if err != nil {
				return err
			}
			dhr, err := harness.Measure(cfg, dh)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "δ=%.2f\t%s\t%.2fx\t%.2fx\n",
				d, harness.FmtBytes(m), simModel.Speedup(d, m), naive.Mean/dhr.Mean)
		}
	}
	tw.Flush()
	return nil
}
