package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunSmoke evaluates the analytical model at reduced parameters —
// pure arithmetic, no simulation.
func TestRunSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "64", "-l", "4"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "Fig. 2") {
		t.Errorf("output missing Fig. 2 header:\n%s", out.String())
	}
}

func TestRunCSV(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-n", "64", "-l", "4", "-csv"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.HasPrefix(out.String(), "delta,msg_bytes,") {
		t.Errorf("CSV output missing header:\n%s", out.String())
	}
}

// TestRunValidate runs the model-vs-simulation comparison on a small
// cluster (the Section VII-A methodology end to end).
func TestRunValidate(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated validation runs skipped in -short")
	}
	var out bytes.Buffer
	err := run([]string{"-n", "64", "-l", "4", "-validate", "-validate-nodes", "2"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "Model vs simulation") {
		t.Errorf("output missing validation table:\n%s", out.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
