package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestRunList prints the conformance matrix; the case names double as
// the -case argument grammar, so pin a representative one.
func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "2n2s3l/er35/dh/allgather") {
		t.Errorf("case listing missing expected name:\n%s", out.String())
	}
}

// TestRunSweepSmoke sweeps the whole matrix over two seeds — the CI
// acceptance run at reduced depth.
func TestRunSweepSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-seeds", "2"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "PASS:") {
		t.Errorf("sweep did not report PASS:\n%s", out.String())
	}
}

// TestRunReplay pins the record → re-run → force-replay contract for
// one case from the command line, including the -dump schedule print.
func TestRunReplay(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-case", "2n2s3l/er35/dh/allgather", "-replay", "3", "-dump"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "replay exact") {
		t.Errorf("replay did not report exactness:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "deliver") {
		t.Errorf("-dump printed no decisions:\n%s", out.String())
	}
}

func TestRunUnknownCase(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-case", "no/such/case"}, &out); err == nil {
		t.Fatal("unknown case accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
