package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"nbrallgather/internal/mpirt"
	"nbrallgather/internal/trace"
)

// TestRunList prints the conformance matrix; the case names double as
// the -case argument grammar, so pin a representative one.
func TestRunList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "2n2s3l/er35/dh/allgather") {
		t.Errorf("case listing missing expected name:\n%s", out.String())
	}
}

// TestRunSweepSmoke sweeps the whole matrix over two seeds — the CI
// acceptance run at reduced depth.
func TestRunSweepSmoke(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-seeds", "2"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "PASS:") {
		t.Errorf("sweep did not report PASS:\n%s", out.String())
	}
}

// TestRunReplay pins the record → re-run → force-replay contract for
// one case from the command line, including the -dump schedule print.
func TestRunReplay(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-case", "2n2s3l/er35/dh/allgather", "-replay", "3", "-dump"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "replay exact") {
		t.Errorf("replay did not report exactness:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "deliver") {
		t.Errorf("-dump printed no decisions:\n%s", out.String())
	}
}

func TestRunUnknownCase(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-case", "no/such/case"}, &out); err == nil {
		t.Fatal("unknown case accepted")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

// TestReplayTriplePrintsDeadlockCycle pins the reproduced-hang report:
// when a replayed seed fails with a DeadlockError, the tool prints the
// full wait-for cycle and confirms the forced replay reproduced the
// identical cycle.
func TestReplayTriplePrintsDeadlockCycle(t *testing.T) {
	derr := &mpirt.DeadlockError{
		Cycle: []mpirt.WaitEdge{
			{Rank: 0, Op: "recv", Peer: 1, Tag: 7},
			{Rank: 1, Op: "recv", Peer: 0, Tag: 7},
		},
		VT: 3,
	}
	runOnce := func(replayFrom *trace.Schedule) (*trace.Schedule, error) {
		return trace.NewSchedule(), derr
	}
	var out bytes.Buffer
	if _, err := replayTriple(&out, "fake-case", 1, runOnce, false); err != nil {
		t.Fatalf("replayTriple: %v\n%s", err, out.String())
	}
	for _, want := range []string{
		"FAIL (reproduced)",
		"wait-for cycle (vt 3)",
		"rank 0 --recv(tag 7)--> rank 1",
		"rank 1 --recv(tag 7)--> rank 0",
		"replay reproduced the identical cycle",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

// TestReplayTripleRejectsDivergentCycle pins the failure mode: a forced
// replay that deadlocks on a different cycle is a determinism bug.
func TestReplayTripleRejectsDivergentCycle(t *testing.T) {
	calls := 0
	runOnce := func(replayFrom *trace.Schedule) (*trace.Schedule, error) {
		calls++
		cycle := []mpirt.WaitEdge{
			{Rank: 0, Op: "recv", Peer: 1, Tag: 7},
			{Rank: 1, Op: "recv", Peer: 0, Tag: 7},
		}
		if calls == 3 { // the forced replay sees a different peer
			cycle = []mpirt.WaitEdge{
				{Rank: 0, Op: "recv", Peer: 2, Tag: 7},
				{Rank: 2, Op: "recv", Peer: 0, Tag: 7},
			}
		}
		return trace.NewSchedule(), &mpirt.DeadlockError{Cycle: cycle, VT: 3}
	}
	var out bytes.Buffer
	_, err := replayTriple(&out, "fake-case", 1, runOnce, false)
	if err == nil || !strings.Contains(err.Error(), "did not reproduce the deadlock cycle") {
		t.Fatalf("want cycle-divergence error, got %v", err)
	}
}

// TestRunEngineBoth drives the cross-engine differential modes from
// the command line: a two-seed matrix sweep, a one-seed fail-stop
// sweep, and a replay that must report identical schedules.
func TestRunEngineBoth(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-engine", "both", "-seeds", "2"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "on both engines") {
		t.Errorf("differential sweep did not report both-engine PASS:\n%s", out.String())
	}
	out.Reset()
	if err := run([]string{"-faults", "-engine", "both", "-seeds", "1"}, &out); err != nil {
		t.Fatalf("faults run: %v\n%s", err, out.String())
	}
	out.Reset()
	if err := run([]string{"-engine", "both", "-case", "2n2s3l/er35/dh/allgather", "-replay", "3"}, &out); err != nil {
		t.Fatalf("replay run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "cross-engine: schedules identical") {
		t.Errorf("replay did not confirm cross-engine identity:\n%s", out.String())
	}
}

func TestRunEngineRejectsUnknown(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-engine", "quantum"}, &out); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestProfilingFlags sweeps one case over one seed with
// -cpuprofile/-memprofile and checks both profiles land on disk
// non-empty.
func TestProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var out bytes.Buffer
	err := run([]string{"-case", "2n2s3l/er35/dh/allgather", "-seeds", "1",
		"-cpuprofile", cpu, "-memprofile", mem}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	for _, path := range []string{cpu, mem} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Errorf("profile %s is empty", path)
		}
	}
}

// TestRunLinkFaultsSweep sweeps the link-fault family over one seed —
// the CI link-fault acceptance run at reduced depth.
func TestRunLinkFaultsSweep(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-linkfaults", "-seeds", "1"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "PASS:") {
		t.Errorf("link-fault sweep did not report PASS:\n%s", out.String())
	}
}

// TestRunLinkFaultsList pins the -linkfaults case-name grammar.
func TestRunLinkFaultsList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-linkfaults", "-list"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "linkfault/cn/nicdown/before") {
		t.Errorf("link-fault listing missing expected name:\n%s", out.String())
	}
}

// TestRunLinkFaultsReplay pins record → re-run → force-replay for a
// link-fault case whose schedule records detection decisions.
func TestRunLinkFaultsReplay(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-linkfaults", "-case", "linkfault/dh/partition/before", "-replay", "3", "-dump"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "replay exact") {
		t.Errorf("replay did not report exactness:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "link-fault") {
		t.Errorf("-dump shows no link-fault decision:\n%s", out.String())
	}
}

// TestRunLinkFaultsEngineBoth runs one link-fault case differentially.
func TestRunLinkFaultsEngineBoth(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-linkfaults", "-engine", "both", "-case", "linkfault/cn/uplinkdown/before", "-replay", "1"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "cross-engine: schedules identical") {
		t.Errorf("differential replay did not compare schedules:\n%s", out.String())
	}
}

// TestRunLinkFaultsExclusiveWithFaults pins the mode exclusivity.
func TestRunLinkFaultsExclusiveWithFaults(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-linkfaults", "-faults"}, &out); err == nil {
		t.Fatal("-linkfaults with -faults accepted")
	}
}
