// Command nbr-chaos drives the deterministic chaos harness from the
// command line: it sweeps the differential conformance matrix (every
// collective algorithm × collective kind × cluster/graph shape) over a
// range of adversarial scheduling seeds, and replays any (case, seed)
// pair bit-exactly for debugging.
//
// Sweep (the acceptance run):
//
//	nbr-chaos -seeds 50
//
// Replay a failure printed by the sweep or by the conformance tests:
//
//	nbr-chaos -case 2n2s3l/er35/dh/allgather -replay 17 -dump
//
// Replay runs the seed twice and verifies the recorded schedules are
// hash-identical, then forces the recorded schedule back through the
// scheduler (divergence detection on) — the full determinism contract.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nbrallgather/internal/conformance"
	"nbrallgather/internal/mpirt"
	"nbrallgather/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "nbr-chaos: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nbr-chaos", flag.ContinueOnError)
	fs.SetOutput(out)
	seeds := fs.Int("seeds", 50, "number of adversarial seeds to sweep")
	seedBase := fs.Int64("seed-base", 0, "first seed of the sweep")
	caseName := fs.String("case", "", "restrict to one matrix case (see -list)")
	replay := fs.Int64("replay", -1, "replay one seed instead of sweeping: record, re-run, compare, force-replay")
	scheduleOnly := fs.Bool("schedule-only", false, "adversarial scheduling only, no fault injection")
	dump := fs.Bool("dump", false, "with -replay, print the recorded decision schedule")
	list := fs.Bool("list", false, "list the conformance matrix cases and exit")
	verbose := fs.Bool("v", false, "per-seed progress")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cases, err := conformance.Matrix()
	if err != nil {
		return err
	}
	if *list {
		for _, c := range cases {
			fmt.Fprintln(out, c.Name)
		}
		return nil
	}
	if *caseName != "" {
		c, err := conformance.FindCase(*caseName)
		if err != nil {
			return err
		}
		cases = []conformance.Case{c}
	}

	mk := mpirt.DefaultChaos
	if *scheduleOnly {
		mk = mpirt.ScheduleOnly
	}

	if *replay >= 0 {
		return replaySeed(out, cases, *replay, mk, *dump)
	}
	return sweep(out, cases, *seeds, *seedBase, mk, *verbose)
}

func sweep(out io.Writer, cases []conformance.Case, nseeds int, base int64, mk func(int64) *mpirt.Chaos, verbose bool) error {
	if nseeds < 1 {
		return fmt.Errorf("-seeds %d must be positive", nseeds)
	}
	seeds := make([]int64, nseeds)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	fmt.Fprintf(out, "sweeping %d cases × %d seeds (seeds %d..%d)\n",
		len(cases), nseeds, base, base+int64(nseeds)-1)
	progress := func(done, failures int) {
		if verbose || done == len(seeds) {
			fmt.Fprintf(out, "  seed %d/%d done, %d failures\n", done, len(seeds), failures)
		}
	}
	failures := conformance.Sweep(cases, seeds, mk, progress)
	if len(failures) == 0 {
		fmt.Fprintf(out, "PASS: %d runs byte-identical under adversarial schedules\n", len(cases)*nseeds)
		return nil
	}
	for _, f := range failures {
		fmt.Fprintf(out, "FAIL %s\n  reproduce: nbr-chaos -case %s -replay %d\n", f, f.Case.Name, f.Seed)
	}
	return fmt.Errorf("%d of %d runs failed", len(failures), len(cases)*nseeds)
}

func replaySeed(out io.Writer, cases []conformance.Case, seed int64, mk func(int64) *mpirt.Chaos, dump bool) error {
	for _, c := range cases {
		record := func(replayFrom *trace.Schedule) (*trace.Schedule, error) {
			ch := mk(seed)
			s := trace.NewSchedule()
			ch.Record = s
			ch.Replay = replayFrom
			err := conformance.RunCase(c, ch)
			return s, err
		}

		s1, err1 := record(nil)
		s2, err2 := record(nil)
		if (err1 == nil) != (err2 == nil) {
			return fmt.Errorf("%s seed %d: nondeterministic outcome: %v vs %v", c.Name, seed, err1, err2)
		}
		if s1.Hash() != s2.Hash() {
			return fmt.Errorf("%s seed %d: schedules diverge at decision %d — determinism broken",
				c.Name, seed, s1.Diverge(s2))
		}
		s3, err3 := record(s1)
		if err3 != nil && err1 == nil {
			return fmt.Errorf("%s seed %d: forced replay failed: %v", c.Name, seed, err3)
		}
		if !s1.Equal(s3) {
			return fmt.Errorf("%s seed %d: forced replay produced a different schedule (diverge at %d)",
				c.Name, seed, s1.Diverge(s3))
		}

		resumes, delivers, drops := s1.Counts()
		status := "PASS"
		if err1 != nil {
			status = "FAIL (reproduced)"
		}
		fmt.Fprintf(out, "%s %s seed %d: %d decisions (%d resumes, %d deliveries, %d dedups), schedule %016x, replay exact\n",
			status, c.Name, seed, s1.Len(), resumes, delivers, drops, s1.Hash())
		if err1 != nil {
			fmt.Fprintf(out, "  error: %v\n", err1)
		}
		if dump {
			if err := s1.Write(out); err != nil {
				return err
			}
		}
	}
	return nil
}
