// Command nbr-chaos drives the deterministic chaos harness from the
// command line: it sweeps the differential conformance matrix (every
// collective algorithm × collective kind × cluster/graph shape) over a
// range of adversarial scheduling seeds, and replays any (case, seed)
// pair bit-exactly for debugging.
//
// Sweep (the acceptance run):
//
//	nbr-chaos -seeds 50
//
// Sweep the fail-stop family (injected rank crashes, ULFM recovery):
//
//	nbr-chaos -faults -seeds 10
//
// Replay a failure printed by the sweep or by the conformance tests:
//
//	nbr-chaos -case 2n2s3l/er35/dh/allgather -replay 17 -dump
//	nbr-chaos -faults -case failstop/2n2s3l/er35/dh/allgatherv/agent -replay 3
//
// Replay runs the seed twice and verifies the recorded schedules are
// hash-identical, then forces the recorded schedule back through the
// scheduler (divergence detection on) — the full determinism contract.
// Fail-stop replays record the injected kills in the schedule, so the
// printed decision counts include the crash points.
//
// Ad-hoc fault injection overrides a fail-stop case's derived kill
// schedule ("rank@afterOps" or "rank@afterOps@vt", comma-separated):
//
//	nbr-chaos -faults -case failstop/2n2s3l/er35/cn/allgatherv/mid -replay 0 -kill 5@3,1@0
//
// Sweep the link-fault family (down NICs/ports/uplinks, degraded
// fabrics, partitions, topology-aware repair):
//
//	nbr-chaos -linkfaults -seeds 10
//	nbr-chaos -linkfaults -engine both -seeds 10
//	nbr-chaos -linkfaults -case linkfault/cn/nicdown/before -replay 3
//
// Execution engine selection: -engine threaded (default), -engine
// event (the serial calendar-queue engine), or -engine both, which
// runs every (case, seed) pair on both engines and additionally
// demands bit-identical decision schedules, virtual times, and
// detection totals across them (the cross-engine differential oracle):
//
//	nbr-chaos -engine both -seeds 10
//	nbr-chaos -faults -engine both -seeds 10
//	nbr-chaos -engine both -case 2n2s3l/er35/dh/allgather -replay 17
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"nbrallgather/internal/conformance"
	"nbrallgather/internal/mpirt"
	"nbrallgather/internal/prof"
	sweeppkg "nbrallgather/internal/sweep"
	"nbrallgather/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "nbr-chaos: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nbr-chaos", flag.ContinueOnError)
	fs.SetOutput(out)
	seeds := fs.Int("seeds", 50, "number of adversarial seeds to sweep")
	seedBase := fs.Int64("seed-base", 0, "first seed of the sweep")
	caseName := fs.String("case", "", "restrict to one matrix case (see -list)")
	replay := fs.Int64("replay", -1, "replay one seed instead of sweeping: record, re-run, compare, force-replay")
	scheduleOnly := fs.Bool("schedule-only", false, "adversarial scheduling only, no fault injection")
	faults := fs.Bool("faults", false, "run the fail-stop case family (injected rank crashes) instead of the conformance matrix")
	linkFaults := fs.Bool("linkfaults", false, "run the link-fault case family (down/degraded NICs, ports, uplinks, partitions) instead of the conformance matrix")
	killSpec := fs.String("kill", "", "with -faults, override the kill schedule: rank@afterOps[@vt], comma-separated")
	dump := fs.Bool("dump", false, "with -replay, print the recorded decision schedule")
	list := fs.Bool("list", false, "list the conformance matrix cases and exit")
	verbose := fs.Bool("v", false, "per-seed progress")
	engineFlag := fs.String("engine", "", "execution engine: threaded, event, or both (cross-engine differential); default threaded or $NBR_MPIRT_ENGINE")
	pf := prof.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	eng, both, err := parseEngineFlag(*engineFlag)
	if err != nil {
		return err
	}

	mk := mpirt.DefaultChaos
	if *scheduleOnly {
		mk = mpirt.ScheduleOnly
	}

	return pf.Wrap(func() error {
		if *faults && *linkFaults {
			return fmt.Errorf("-faults and -linkfaults are mutually exclusive")
		}
		if *faults {
			return runFaults(out, *caseName, *killSpec, *seeds, *seedBase, *replay, mk, eng, both, *list, *dump, *verbose)
		}
		if *killSpec != "" {
			return fmt.Errorf("-kill requires -faults")
		}
		if *linkFaults {
			return runLinkFaults(out, *caseName, *seeds, *seedBase, *replay, mk, eng, both, *list, *dump, *verbose)
		}

		cases, err := conformance.Matrix()
		if err != nil {
			return err
		}
		if *list {
			for _, c := range cases {
				fmt.Fprintln(out, c.Name)
			}
			return nil
		}
		if *caseName != "" {
			c, err := conformance.FindCase(*caseName)
			if err != nil {
				return err
			}
			cases = []conformance.Case{c}
		}

		if *replay >= 0 {
			return replaySeed(out, cases, *replay, mk, eng, both, *dump)
		}
		return sweep(out, cases, *seeds, *seedBase, mk, eng, both, *verbose)
	})
}

// parseEngineFlag resolves -engine into a pinned engine or the
// cross-engine differential mode.
func parseEngineFlag(s string) (mpirt.Engine, bool, error) {
	if s == "both" {
		return mpirt.EngineDefault, true, nil
	}
	eng, err := mpirt.ParseEngine(s)
	if err != nil {
		return mpirt.EngineDefault, false, fmt.Errorf("-engine: %w", err)
	}
	return eng, false, nil
}

func sweep(out io.Writer, cases []conformance.Case, nseeds int, base int64, mk func(int64) *mpirt.Chaos, eng mpirt.Engine, both, verbose bool) error {
	if nseeds < 1 {
		return fmt.Errorf("-seeds %d must be positive", nseeds)
	}
	seeds := make([]int64, nseeds)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	mode := "sweeping"
	if both {
		mode = "differential-sweeping (threaded vs event)"
	}
	fmt.Fprintf(out, "%s %d cases × %d seeds (seeds %d..%d)\n",
		mode, len(cases), nseeds, base, base+int64(nseeds)-1)
	progress := func(done, failures int) {
		if verbose || done == len(seeds) {
			fmt.Fprintf(out, "  seed %d/%d done, %d failures\n", done, len(seeds), failures)
		}
	}
	var failures []conformance.Failure
	if both {
		failures = conformance.DiffSweep(cases, seeds, mk, progress)
	} else {
		failures = conformance.SweepOn(eng, cases, seeds, mk, progress)
	}
	if len(failures) == 0 {
		if both {
			fmt.Fprintf(out, "PASS: %d runs byte-identical under adversarial schedules on both engines\n", len(cases)*nseeds)
		} else {
			fmt.Fprintf(out, "PASS: %d runs byte-identical under adversarial schedules\n", len(cases)*nseeds)
		}
		return nil
	}
	for _, f := range failures {
		fmt.Fprintf(out, "FAIL %s\n  reproduce: nbr-chaos -case %s -replay %d\n", f, f.Case.Name, f.Seed)
	}
	return fmt.Errorf("%d of %d runs failed", len(failures), len(cases)*nseeds)
}

func replaySeed(out io.Writer, cases []conformance.Case, seed int64, mk func(int64) *mpirt.Chaos, eng mpirt.Engine, both bool, dump bool) error {
	for _, c := range cases {
		runOn := func(e mpirt.Engine) func(*trace.Schedule) (*trace.Schedule, error) {
			return func(replayFrom *trace.Schedule) (*trace.Schedule, error) {
				ch := mk(seed)
				s := trace.NewSchedule()
				ch.Record = s
				ch.Replay = replayFrom
				_, err := conformance.RunCaseOn(e, c, ch)
				return s, err
			}
		}
		if !both {
			if _, err := replayTriple(out, c.Name, seed, runOn(eng), dump); err != nil {
				return err
			}
			continue
		}
		if err := replayBoth(out, c.Name, seed, runOn, dump); err != nil {
			return err
		}
	}
	return nil
}

// replayBoth runs the replay contract on each engine and then demands
// the two engines' recorded schedules agree bit for bit.
func replayBoth(out io.Writer, name string, seed int64, runOn func(mpirt.Engine) func(*trace.Schedule) (*trace.Schedule, error), dump bool) error {
	var scheds [2]*trace.Schedule
	for i, e := range []mpirt.Engine{mpirt.EngineThreaded, mpirt.EngineEvent} {
		fmt.Fprintf(out, "[%s] ", e)
		s, err := replayTriple(out, name, seed, runOn(e), dump && i == 0)
		if err != nil {
			return err
		}
		scheds[i] = s
	}
	if scheds[0].Hash() != scheds[1].Hash() {
		return fmt.Errorf("%s seed %d: engines diverge at decision %d — cross-engine determinism broken",
			name, seed, scheds[0].Diverge(scheds[1]))
	}
	fmt.Fprintf(out, "cross-engine: schedules identical (%016x)\n", scheds[0].Hash())
	return nil
}

// replayTriple implements the determinism contract shared by matrix
// and fail-stop replays: record twice, compare hashes, then force the
// first schedule back through the scheduler and demand equality.
func replayTriple(out io.Writer, name string, seed int64, runOnce func(*trace.Schedule) (*trace.Schedule, error), dump bool) (*trace.Schedule, error) {
	s1, err1 := runOnce(nil)
	s2, err2 := runOnce(nil)
	if (err1 == nil) != (err2 == nil) {
		return nil, fmt.Errorf("%s seed %d: nondeterministic outcome: %v vs %v", name, seed, err1, err2)
	}
	if s1.Hash() != s2.Hash() {
		return nil, fmt.Errorf("%s seed %d: schedules diverge at decision %d — determinism broken",
			name, seed, s1.Diverge(s2))
	}
	s3, err3 := runOnce(s1)
	if err3 != nil && err1 == nil {
		return nil, fmt.Errorf("%s seed %d: forced replay failed: %v", name, seed, err3)
	}
	if !s1.Equal(s3) {
		return nil, fmt.Errorf("%s seed %d: forced replay produced a different schedule (diverge at %d)",
			name, seed, s1.Diverge(s3))
	}

	resumes, delivers, drops := s1.Counts()
	status := "PASS"
	if err1 != nil {
		status = "FAIL (reproduced)"
	}
	fmt.Fprintf(out, "%s %s seed %d: %d decisions (%d resumes, %d deliveries, %d dedups), schedule %016x, replay exact\n",
		status, name, seed, s1.Len(), resumes, delivers, drops, s1.Hash())
	if kills := s1.CountKind(trace.DecisionKill); kills > 0 {
		fmt.Fprintf(out, "  faults: %d kills, %d fail-notifies, %d revoke-notifies recorded in schedule\n",
			kills, s1.CountKind(trace.DecisionFailNotify), s1.CountKind(trace.DecisionRevokeNotify))
	}
	if err1 != nil {
		fmt.Fprintf(out, "  error: %v\n", err1)
		var d1 *mpirt.DeadlockError
		if errors.As(err1, &d1) {
			fmt.Fprintf(out, "  wait-for cycle (vt %.6g):\n", d1.VT)
			for _, e := range d1.Cycle {
				fmt.Fprintf(out, "    %s\n", e)
			}
			var d3 *mpirt.DeadlockError
			if !errors.As(err3, &d3) || !d1.SameCycle(d3) {
				return nil, fmt.Errorf("%s seed %d: forced replay did not reproduce the deadlock cycle (%v vs %v)",
					name, seed, err1, err3)
			}
			fmt.Fprintln(out, "  replay reproduced the identical cycle")
		}
	}
	if dump {
		if err := s1.Write(out); err != nil {
			return nil, err
		}
	}
	return s1, nil
}

// runFaults drives the fail-stop family: list, sweep, or replay, with
// an optional ad-hoc kill schedule.
func runFaults(out io.Writer, caseName, killSpec string, nseeds int, base, replay int64, mk func(int64) *mpirt.Chaos, eng mpirt.Engine, both, list, dump, verbose bool) error {
	cases, err := conformance.FailStopMatrix()
	if err != nil {
		return err
	}
	if list {
		for _, c := range cases {
			fmt.Fprintln(out, c.Name)
		}
		return nil
	}
	if caseName != "" {
		c, err := conformance.FindFailStopCase(caseName)
		if err != nil {
			return err
		}
		cases = []conformance.FailStopCase{c}
	}
	kills, err := parseKills(killSpec)
	if err != nil {
		return err
	}
	if kills != nil && caseName == "" {
		return fmt.Errorf("-kill requires -case (an ad-hoc schedule applies to one case)")
	}

	runCase := func(e mpirt.Engine, c conformance.FailStopCase, seed int64, ch *mpirt.Chaos) error {
		if kills != nil {
			_, err := conformance.RunFailStopCaseKillsOn(e, c, ch, kills)
			return err
		}
		_, err := conformance.RunFailStopCaseOn(e, c, seed, ch)
		return err
	}

	if replay >= 0 {
		for _, c := range cases {
			ks := kills
			if ks == nil {
				ks = conformance.FailStopKills(c, replay)
			}
			fmt.Fprintf(out, "%s: kill schedule %s\n", c.Name, formatKills(ks))
			runOn := func(e mpirt.Engine) func(*trace.Schedule) (*trace.Schedule, error) {
				return func(replayFrom *trace.Schedule) (*trace.Schedule, error) {
					ch := mk(replay)
					s := trace.NewSchedule()
					ch.Record = s
					ch.Replay = replayFrom
					err := runCase(e, c, replay, ch)
					return s, err
				}
			}
			if !both {
				if _, err := replayTriple(out, c.Name, replay, runOn(eng), dump); err != nil {
					return err
				}
				continue
			}
			if err := replayBoth(out, c.Name, replay, runOn, dump); err != nil {
				return err
			}
		}
		return nil
	}

	if nseeds < 1 {
		return fmt.Errorf("-seeds %d must be positive", nseeds)
	}
	seeds := make([]int64, nseeds)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	mode := "fail-stop sweep"
	if both {
		mode = "fail-stop differential sweep (threaded vs event)"
	}
	fmt.Fprintf(out, "%s: %d cases × %d seeds (seeds %d..%d)\n",
		mode, len(cases), nseeds, base, base+int64(nseeds)-1)
	// Cases within a seed are independent simulations; run them on the
	// sweep pool and collect failures in case order so the report is
	// byte-identical to a serial loop.
	var failures []conformance.FailStopFailure
	if both && kills == nil {
		progress := func(done, nfail int) {
			if verbose || done == len(seeds) {
				fmt.Fprintf(out, "  seed %d/%d done, %d failures\n", done, len(seeds), nfail)
			}
		}
		failures = conformance.DiffFailStopSweep(cases, seeds, mk, progress)
	} else {
		for i, seed := range seeds {
			_, err := sweeppkg.Map(context.Background(), len(cases), func(j int) (struct{}, error) {
				if both {
					// Ad-hoc kills with -engine both: run each engine and
					// demand agreeing outcomes (the seed-derived path above
					// additionally compares schedules and reports).
					errT := runCase(mpirt.EngineThreaded, cases[j], seed, mk(seed))
					errE := runCase(mpirt.EngineEvent, cases[j], seed, mk(seed))
					if (errT == nil) != (errE == nil) {
						return struct{}{}, fmt.Errorf("engines disagree: threaded %v, event %v", errT, errE)
					}
					return struct{}{}, errT
				}
				return struct{}{}, runCase(eng, cases[j], seed, mk(seed))
			})
			var agg *sweeppkg.Error
			if errors.As(err, &agg) {
				for _, it := range agg.Items {
					failures = append(failures, conformance.FailStopFailure{Case: cases[it.Index], Seed: seed, Err: it.Err})
				}
			}
			if verbose || i == len(seeds)-1 {
				fmt.Fprintf(out, "  seed %d/%d done, %d failures\n", i+1, len(seeds), len(failures))
			}
		}
	}
	if len(failures) == 0 {
		fmt.Fprintf(out, "PASS: %d fail-stop runs recovered or failed fast with typed errors\n", len(cases)*nseeds)
		return nil
	}
	for _, f := range failures {
		fmt.Fprintf(out, "FAIL %s\n  reproduce: nbr-chaos -faults -case %s -replay %d\n", f, f.Case.Name, f.Seed)
	}
	return fmt.Errorf("%d of %d fail-stop runs failed", len(failures), len(cases)*nseeds)
}

// runLinkFaults drives the link-fault family: list, sweep, or replay.
func runLinkFaults(out io.Writer, caseName string, nseeds int, base, replay int64, mk func(int64) *mpirt.Chaos, eng mpirt.Engine, both, list, dump, verbose bool) error {
	cases, err := conformance.LinkFaultMatrix()
	if err != nil {
		return err
	}
	if list {
		for _, c := range cases {
			fmt.Fprintln(out, c.Name)
		}
		return nil
	}
	if caseName != "" {
		c, err := conformance.FindLinkFaultCase(caseName)
		if err != nil {
			return err
		}
		cases = []conformance.LinkFaultCase{c}
	}

	if replay >= 0 {
		for _, c := range cases {
			fmt.Fprintf(out, "%s: fault schedule %v\n", c.Name, conformance.LinkFaultSchedule(c, replay))
			runOn := func(e mpirt.Engine) func(*trace.Schedule) (*trace.Schedule, error) {
				return func(replayFrom *trace.Schedule) (*trace.Schedule, error) {
					ch := mk(replay)
					s := trace.NewSchedule()
					ch.Record = s
					ch.Replay = replayFrom
					_, err := conformance.RunLinkFaultCaseOn(e, c, replay, ch)
					return s, err
				}
			}
			if !both {
				if _, err := replayTriple(out, c.Name, replay, runOn(eng), dump); err != nil {
					return err
				}
				continue
			}
			if err := replayBoth(out, c.Name, replay, runOn, dump); err != nil {
				return err
			}
		}
		return nil
	}

	if nseeds < 1 {
		return fmt.Errorf("-seeds %d must be positive", nseeds)
	}
	seeds := make([]int64, nseeds)
	for i := range seeds {
		seeds[i] = base + int64(i)
	}
	mode := "link-fault sweep"
	if both {
		mode = "link-fault differential sweep (threaded vs event)"
	}
	fmt.Fprintf(out, "%s: %d cases × %d seeds (seeds %d..%d)\n",
		mode, len(cases), nseeds, base, base+int64(nseeds)-1)
	progress := func(done, nfail int) {
		if verbose || done == len(seeds) {
			fmt.Fprintf(out, "  seed %d/%d done, %d failures\n", done, len(seeds), nfail)
		}
	}
	var failures []conformance.LinkFaultFailure
	if both {
		failures = conformance.DiffLinkFaultSweep(cases, seeds, mk, progress)
	} else if eng == mpirt.EngineDefault {
		failures = conformance.LinkFaultSweep(cases, seeds, mk, progress)
	} else {
		for i, seed := range seeds {
			_, err := sweeppkg.Map(context.Background(), len(cases), func(j int) (struct{}, error) {
				_, err := conformance.RunLinkFaultCaseOn(eng, cases[j], seed, mk(seed))
				return struct{}{}, err
			})
			var agg *sweeppkg.Error
			if errors.As(err, &agg) {
				for _, it := range agg.Items {
					failures = append(failures, conformance.LinkFaultFailure{Case: cases[it.Index], Seed: seed, Err: it.Err})
				}
			}
			progress(i+1, len(failures))
		}
	}
	if len(failures) == 0 {
		fmt.Fprintf(out, "PASS: %d link-fault runs recovered, degraded gracefully, or returned identical partition verdicts\n", len(cases)*nseeds)
		return nil
	}
	for _, f := range failures {
		fmt.Fprintf(out, "FAIL %s\n  reproduce: nbr-chaos -linkfaults -case %s -replay %d\n", f, f.Case.Name, f.Seed)
	}
	return fmt.Errorf("%d of %d link-fault runs failed", len(failures), len(cases)*nseeds)
}

// parseKills parses the -kill spec: "rank@afterOps" or
// "rank@afterOps@vt", comma-separated. Empty input is no override.
func parseKills(spec string) ([]mpirt.Kill, error) {
	if spec == "" {
		return nil, nil
	}
	var kills []mpirt.Kill
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), "@")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("-kill %q: want rank@afterOps[@vt]", part)
		}
		rank, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("-kill %q: bad rank: %v", part, err)
		}
		ops, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("-kill %q: bad afterOps: %v", part, err)
		}
		k := mpirt.Kill{Rank: rank, AfterOps: ops}
		if len(fields) == 3 {
			vt, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("-kill %q: bad vt: %v", part, err)
			}
			k.VT = vt
		}
		kills = append(kills, k)
	}
	return kills, nil
}

func formatKills(kills []mpirt.Kill) string {
	parts := make([]string, len(kills))
	for i, k := range kills {
		if k.VT > 0 {
			parts[i] = fmt.Sprintf("%d@%d@%g", k.Rank, k.AfterOps, k.VT)
		} else {
			parts[i] = fmt.Sprintf("%d@%d", k.Rank, k.AfterOps)
		}
	}
	return strings.Join(parts, ",")
}
