package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSmoke drives the full CLI at a reduced scale: cached run,
// baseline, coalescing proof and one Zipf cell, with verify-on-insert
// active and the JSON snapshot written and parsed back.
func TestRunSmoke(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var buf bytes.Buffer
	err := run([]string{
		"-reqs", "2000", "-baseline-reqs", "200",
		"-neighborhoods", "50", "-ranks", "24", "-density", "0.2",
		"-workers", "4", "-herd", "16",
		"-zipf-sweep", "1.5", "-zipf-reqs", "1000",
		"-verify-on-insert",
		"-json", path,
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"cached", "baseline", "speedup", "coalesce",
		"16 identical concurrent requests → 1 build(s), 15 coalesced",
		"zipf s",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc planDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "nbr-plan/pr10" {
		t.Fatalf("schema = %q", doc.Schema)
	}
	if doc.Cached.Requests != 2000 || doc.Baseline.Requests != 200 {
		t.Fatalf("request counts: cached %d baseline %d", doc.Cached.Requests, doc.Baseline.Requests)
	}
	if doc.Speedup <= 0 {
		t.Fatalf("speedup = %g", doc.Speedup)
	}
	if doc.Coalescing.Builds != 1 || doc.Coalescing.Coalesced != 15 {
		t.Fatalf("coalescing cell = %+v", doc.Coalescing)
	}
	if len(doc.ZipfTable) != 1 {
		t.Fatalf("zipf table has %d cells, want 1", len(doc.ZipfTable))
	}
}

func TestRunAssertFailures(t *testing.T) {
	common := []string{
		"-reqs", "1000", "-baseline-reqs", "100",
		"-neighborhoods", "30", "-ranks", "24", "-density", "0.2",
		"-workers", "2", "-herd", "8", "-zipf-sweep", "",
	}
	var buf bytes.Buffer
	if err := run(append(common[:len(common):len(common)], "-assert-hit-rate", "1.01"), &buf); err == nil {
		t.Error("impossible hit-rate floor passed")
	}
	buf.Reset()
	if err := run(append(common[:len(common):len(common)], "-assert-speedup", "1e12"), &buf); err == nil {
		t.Error("impossible speedup floor passed")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-zipf", "0.5", "-reqs", "10", "-baseline-reqs", "10", "-zipf-sweep", ""}, &buf); err == nil {
		t.Error("Zipf ≤ 1 accepted")
	}
	buf.Reset()
	if err := run([]string{"-zipf-sweep", "nope", "-reqs", "100", "-baseline-reqs", "10", "-neighborhoods", "10", "-ranks", "24", "-herd", "4"}, &buf); err == nil {
		t.Error("malformed -zipf-sweep accepted")
	}
}
