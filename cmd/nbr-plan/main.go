// Command nbr-plan exercises the planner-as-a-service path: a
// synthetic heavy-traffic generator fires plan requests
// Zipf-distributed over thousands of distinct neighborhoods at the
// content-addressed plan cache (internal/plancache) and reports
// plans/sec, hit rate, coalescing factor and p50/p99/p999 latency —
// cached vs. the negotiate-every-request baseline — plus the
// thundering-herd proof (N concurrent identical requests → 1 build)
// and a Zipf-skew hit-rate table. The -json snapshot lands in
// results/BENCH_pr10.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"text/tabwriter"

	"nbrallgather/internal/harness"
	"nbrallgather/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "nbr-plan: %v\n", err)
		os.Exit(1)
	}
}

// planCell is one traffic run in the JSON snapshot.
type planCell struct {
	Requests    int     `json:"requests"`
	WallS       float64 `json:"wall_s"`
	PlansPerSec float64 `json:"plans_per_sec"`
	HitRate     float64 `json:"hit_rate"`
	Coalescing  float64 `json:"coalescing_factor"`
	P50us       float64 `json:"p50_us"`
	P99us       float64 `json:"p99_us"`
	P999us      float64 `json:"p999_us"`
	Builds      int64   `json:"builds"`
	Evictions   int64   `json:"evictions"`
	Overloads   int64   `json:"overloads"`
	CacheBytes  int64   `json:"cache_bytes"`
	CacheNumber int     `json:"cache_entries"`
}

type coalesceCell struct {
	Requesters int   `json:"requesters"`
	Builds     int64 `json:"builds"`
	Coalesced  int64 `json:"coalesced"`
}

type zipfCell struct {
	S       float64 `json:"s"`
	HitRate float64 `json:"hit_rate"`
	PlansPS float64 `json:"plans_per_sec"`
}

type planDoc struct {
	Schema        string       `json:"schema"`
	Neighborhoods int          `json:"neighborhoods"`
	GraphRanks    int          `json:"graph_ranks"`
	Density       float64      `json:"density"`
	Zipf          float64      `json:"zipf"`
	Workers       int          `json:"workers"`
	Algos         []string     `json:"algos"`
	Seed          int64        `json:"seed"`
	Cached        planCell     `json:"cached"`
	Baseline      planCell     `json:"baseline"`
	Speedup       float64      `json:"speedup"`
	Coalescing    coalesceCell `json:"coalescing"`
	ZipfTable     []zipfCell   `json:"zipf_table,omitempty"`
}

func cell(r harness.PlanLoadResult) planCell {
	return planCell{
		Requests:    r.Requests,
		WallS:       r.Wall.Seconds(),
		PlansPerSec: r.PlansPerSec,
		HitRate:     r.HitRate,
		Coalescing:  r.CoalescingFactor,
		P50us:       float64(r.P50.Nanoseconds()) / 1e3,
		P99us:       float64(r.P99.Nanoseconds()) / 1e3,
		P999us:      float64(r.P999.Nanoseconds()) / 1e3,
		Builds:      r.Cache.Misses,
		Evictions:   r.Cache.Evictions,
		Overloads:   r.Overloads,
		CacheBytes:  r.Cache.Bytes,
		CacheNumber: r.Cache.Entries,
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("nbr-plan", flag.ContinueOnError)
	fs.SetOutput(out)
	reqs := fs.Int("reqs", 2_000_000, "plan requests fired at the cached service")
	baselineReqs := fs.Int("baseline-reqs", 20_000, "requests for the no-cache baseline (every request negotiates)")
	hoods := fs.Int("neighborhoods", 2000, "distinct neighborhood graphs in the population")
	ranks := fs.Int("ranks", 64, "ranks per neighborhood graph")
	density := fs.Float64("density", 0.12, "Erdős–Rényi density of the neighborhoods")
	workers := fs.Int("workers", 8, "concurrent requesters")
	zipfS := fs.Float64("zipf", 1.1, "Zipf skew exponent s > 1 of neighborhood popularity")
	algos := fs.String("algos", "dh,cn", "comma-separated plan kinds to request")
	msgSize := fs.Int("msg", 1<<10, "payload bytes keyed into the size class")
	cacheMB := fs.Int64("cache-mb", 256, "cache budget in MiB")
	planners := fs.Int("planners", 0, "admission bound on concurrent planners (0 = GOMAXPROCS)")
	queue := fs.Int("queue", 0, "admission bound on queued waiters (0 = 4×planners)")
	verifyOnInsert := fs.Bool("verify-on-insert", false, "run planverify invariants on every first insertion")
	herd := fs.Int("herd", 64, "concurrent identical requests for the coalescing proof")
	zipfTable := fs.String("zipf-sweep", "1.01,1.1,1.5,2.0", "comma-separated Zipf exponents for the hit-rate table (empty disables)")
	zipfReqs := fs.Int("zipf-reqs", 100_000, "requests per Zipf-table cell")
	seed := fs.Int64("seed", 1, "population and request-stream seed")
	jsonPath := fs.String("json", "", "write the machine-readable snapshot to this path")
	assertHit := fs.Float64("assert-hit-rate", 0, "fail unless the cached hit rate reaches this floor")
	assertSpeedup := fs.Float64("assert-speedup", 0, "fail unless cached/baseline plans/sec reaches this floor")
	if err := fs.Parse(args); err != nil {
		return err
	}

	base := harness.PlanLoadConfig{
		Neighborhoods:  *hoods,
		Workers:        *workers,
		Zipf:           *zipfS,
		Seed:           *seed,
		GraphRanks:     *ranks,
		Density:        *density,
		Cluster:        topology.ForRanks(*ranks, 4),
		Algos:          strings.Split(*algos, ","),
		MsgSize:        *msgSize,
		CacheBytes:     *cacheMB << 20,
		Planners:       *planners,
		MaxQueue:       *queue,
		VerifyOnInsert: *verifyOnInsert,
	}
	doc := planDoc{
		Schema:        "nbr-plan/pr10",
		Neighborhoods: *hoods,
		GraphRanks:    *ranks,
		Density:       *density,
		Zipf:          *zipfS,
		Workers:       *workers,
		Algos:         base.Algos,
		Seed:          *seed,
	}

	// Cached service run.
	cfg := base
	cfg.Requests = *reqs
	cached, err := harness.MeasurePlanThroughput(cfg)
	if err != nil {
		return err
	}
	doc.Cached = cell(cached)
	fmt.Fprintf(out, "cached   %s\n", cached)

	// No-cache baseline: every request negotiates from scratch, so it
	// runs at a reduced request count (throughput per request is what
	// the speedup compares).
	cfg = base
	cfg.Requests = *baselineReqs
	cfg.NoCache = true
	cfg.VerifyOnInsert = false
	baseline, err := harness.MeasurePlanThroughput(cfg)
	if err != nil {
		return err
	}
	doc.Baseline = cell(baseline)
	doc.Speedup = cached.PlansPerSec / baseline.PlansPerSec
	fmt.Fprintf(out, "baseline %s\n", baseline)
	fmt.Fprintf(out, "speedup  %.1f× plans/sec (cached vs. negotiate-every-request)\n", doc.Speedup)

	// Coalescing proof: a thundering herd of identical concurrent
	// requests must negotiate exactly once.
	co, err := harness.MeasureCoalescing(*herd)
	if err != nil {
		return err
	}
	doc.Coalescing = coalesceCell{Requesters: co.Requesters, Builds: co.Builds, Coalesced: co.Coalesced}
	fmt.Fprintf(out, "coalesce %d identical concurrent requests → %d build(s), %d coalesced\n",
		co.Requesters, co.Builds, co.Coalesced)
	if co.Builds != 1 {
		return fmt.Errorf("coalescing proof failed: %d concurrent identical requests ran %d builds, want 1",
			co.Requesters, co.Builds)
	}

	// Zipf-skew hit-rate table.
	if *zipfTable != "" {
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintln(tw, "zipf s\thit rate\tplans/s")
		for _, fld := range strings.Split(*zipfTable, ",") {
			s, err := strconv.ParseFloat(strings.TrimSpace(fld), 64)
			if err != nil {
				return fmt.Errorf("bad -zipf-sweep entry %q: %w", fld, err)
			}
			cfg = base
			cfg.Requests = *zipfReqs
			cfg.Zipf = s
			cfg.VerifyOnInsert = false
			r, err := harness.MeasurePlanThroughput(cfg)
			if err != nil {
				return err
			}
			doc.ZipfTable = append(doc.ZipfTable, zipfCell{S: s, HitRate: r.HitRate, PlansPS: r.PlansPerSec})
			fmt.Fprintf(tw, "%.2f\t%.1f%%\t%.0f\n", s, 100*r.HitRate, r.PlansPerSec)
		}
		tw.Flush()
	}

	if *jsonPath != "" {
		if dir := filepath.Dir(*jsonPath); dir != "." && dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *jsonPath)
	}

	if *assertHit > 0 && cached.HitRate < *assertHit {
		return fmt.Errorf("hit rate %.3f below asserted floor %.3f", cached.HitRate, *assertHit)
	}
	if *assertSpeedup > 0 && doc.Speedup < *assertSpeedup {
		return fmt.Errorf("speedup %.1f× below asserted floor %.1f×", doc.Speedup, *assertSpeedup)
	}
	return nil
}
